/**
 * @file
 * Section 3.3's sensitivity experiment (methodology ablation): "the
 * magnitude of the random perturbation did not have a significant
 * effect on variability. When the uniformly-distributed discrete
 * increment was chosen between 0 and 1 ns (instead of 0-4 ns), the
 * coefficient of variation of the runtimes was not significantly
 * affected."
 *
 * Sweep the maximum perturbation over {0, 1, 2, 4, 8, 16} ns: the
 * CoV must be ~zero with the perturbation off (the simulator is
 * deterministic) and roughly flat for any nonzero magnitude — the
 * perturbation only *exposes* the workload's inherent variability,
 * it does not create it.
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Section 3.3 ablation",
        "space variability vs perturbation magnitude",
        "CoV ~0 at 0 ns; roughly constant for 1..16 ns — the "
        "magnitude doesn't matter, only that a perturbation exists");

    const std::size_t numRuns = bench::scaleRuns(15);
    core::RunConfig rc;
    rc.warmupTxns = 100;
    rc.measureTxns = bench::scaleTxns(200);

    stats::Table t({"max perturbation (ns)", "mean cpt", "CoV %",
                    "range %", "avg added latency (ns/miss)"});
    for (sim::Tick pert : {0ull, 1ull, 2ull, 4ull, 8ull, 16ull}) {
        core::SystemConfig sys = bench::paperSystem();
        sys.mem.perturbMaxNs = pert;
        core::ExperimentConfig exp;
        exp.numRuns = numRuns;
        exp.baseSeed = 3000 + pert * 100;
        const auto results = core::runMany(
            sys, bench::oltpWorkload(), rc, exp);
        const auto rep = core::analyze(results);
        stats::RunningStat added;
        for (const auto &r : results) {
            if (r.mem.l2Misses > 0) {
                added.add(static_cast<double>(
                              r.mem.perturbationTotal) /
                          static_cast<double>(r.mem.l2Misses));
            }
        }
        t.addRow({std::to_string(pert),
                  stats::fmtF(rep.summary.mean, 0),
                  stats::fmtF(rep.coefficientOfVariation, 2),
                  stats::fmtF(rep.rangeOfVariability, 2),
                  stats::fmtF(added.mean(), 2)});
        std::fflush(stdout);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nexpected shape: CoV == 0 at magnitude 0; "
                "similar CoV at every nonzero magnitude; the added "
                "average latency is max/2 ns per miss\n");
    return 0;
}
