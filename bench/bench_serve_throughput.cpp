/**
 * @file
 * Service-path benchmark: campaigns pushed through a resident
 * `varsim serve` daemon over its wire protocol, end to end.
 *
 * For each client count C the benchmark boots a fresh in-process
 * daemon on a unix socket, then C client threads submit a batch of
 * small OLTP campaigns and watch each to completion. Measured per
 * row:
 *
 *   - submit_p50_ms / submit_p99_ms: admission round-trip latency
 *     (connect + frame + validate + durable write + ack);
 *   - first_result_p50_ms / first_result_p99_ms: submit-to-first
 *     recorded run, the latency a dashboard user actually feels;
 *   - campaigns_per_sec: completed campaigns per host second;
 *   - ticks_per_sec: simulated ticks delivered per host second,
 *     summed from the stores after the fact — the same axis every
 *     other emitter reports, so tools/perfcmp.py can compare two
 *     emissions (and its `service` report prints the latency
 *     percentiles side by side).
 *
 * Exits nonzero if any submission or watch fails, or if any
 * campaign ends in a non-complete state.
 *
 * Usage:
 *   bench_serve_throughput [--json FILE] [--campaigns N]
 *
 * VARSIM_QUICK=1 scales the per-row campaign batch down.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "campaign/knobs.hh"
#include "campaign/store.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"

namespace
{

using namespace varsim;
using Clock = std::chrono::steady_clock;

struct Row
{
    std::string mode; ///< "c<clients>"
    std::size_t campaigns = 0;
    double wallSeconds = 0;
    std::uint64_t simTicks = 0;
    double submitP50Ms = 0, submitP99Ms = 0;
    double firstP50Ms = 0, firstP99Ms = 0;

    double ticksPerSec() const { return simTicks / wallSeconds; }
    double campaignsPerSec() const
    {
        return campaigns / wallSeconds;
    }
};

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(xs.size() - 1) + 0.5);
    return xs[std::min(idx, xs.size() - 1)];
}

campaign::SpecFields
benchFields(std::uint64_t seed)
{
    campaign::SpecFields f;
    f.base["cpus"] = "2";
    f.workload = "oltp";
    f.threadsPerCpu = 2;
    f.warmupTxns = 2;
    f.measureTxns = 10;
    f.baseSeed = seed;
    f.fixedRuns = 2;
    return f;
}

void
emitJson(std::ostream &os, const std::vector<Row> &rows)
{
    os << "{\n  \"bench\": \"serve_throughput\",\n"
       << "  \"quick\": " << (bench::quick() ? "true" : "false")
       << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"workload\": \"oltp\", \"mode\": \""
           << r.mode << "\", \"sim_ticks\": " << r.simTicks
           << ", \"campaigns\": " << r.campaigns
           << ", \"wall_seconds\": " << r.wallSeconds
           << ", \"ticks_per_sec\": " << r.ticksPerSec()
           << ", \"campaigns_per_sec\": " << r.campaignsPerSec()
           << ", \"submit_p50_ms\": " << r.submitP50Ms
           << ", \"submit_p99_ms\": " << r.submitP99Ms
           << ", \"first_result_p50_ms\": " << r.firstP50Ms
           << ", \"first_result_p99_ms\": " << r.firstP99Ms
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

/** One client-count measurement; false on any service error. */
bool
runRow(std::size_t clients, std::size_t campaigns, Row &out)
{
    const auto rootPath =
        std::filesystem::temp_directory_path() /
        ("varsim_bench_serve_c" + std::to_string(clients));
    std::filesystem::remove_all(rootPath);
    std::filesystem::create_directories(rootPath);

    serve::DaemonConfig cfg;
    cfg.root = rootPath.string();
    cfg.addr.isUnix = true;
    cfg.addr.path = cfg.root + "/serve.sock";
    cfg.workers = 4;
    serve::Daemon daemon(cfg);
    std::string err;
    if (!daemon.start(&err)) {
        std::fprintf(stderr, "FAIL: daemon start: %s\n",
                     err.c_str());
        return false;
    }

    std::mutex mu;
    std::vector<double> submitMs, firstMs;
    std::atomic<std::size_t> errors{0};

    bench::Stopwatch total;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            serve::Client client(cfg.addr);
            for (std::size_t i = c; i < campaigns; i += clients) {
                std::string terr;
                serve::Submission sub;
                sub.tenant = "t" + std::to_string(i % 4);
                sub.name = "c" + std::to_string(i);
                sub.fields = benchFields(9000 + i);

                const auto t0 = Clock::now();
                if (!client.submit(sub, &terr)) {
                    std::fprintf(stderr, "FAIL: submit %s: %s\n",
                                 sub.id().c_str(), terr.c_str());
                    ++errors;
                    continue;
                }
                const auto t1 = Clock::now();

                bool first = false, complete = false;
                double firstDelay = 0;
                const bool ok = client.watch(
                    sub.id(), 0,
                    [&](const serve::Event &ev) {
                        if (ev.kind == "run" && !first) {
                            first = true;
                            firstDelay =
                                std::chrono::duration<double>(
                                    Clock::now() - t0)
                                    .count();
                        }
                        complete |= ev.kind == "complete";
                    },
                    &terr);
                if (!ok || !complete) {
                    std::fprintf(stderr, "FAIL: watch %s: %s\n",
                                 sub.id().c_str(), terr.c_str());
                    ++errors;
                    continue;
                }
                std::lock_guard<std::mutex> lock(mu);
                submitMs.push_back(
                    std::chrono::duration<double>(t1 - t0)
                        .count() *
                    1e3);
                firstMs.push_back(firstDelay * 1e3);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const double wall = total.seconds();

    serve::Client closer(cfg.addr);
    if (!closer.drain(&err)) {
        std::fprintf(stderr, "FAIL: drain: %s\n", err.c_str());
        return false;
    }
    daemon.wait();

    // The throughput axis: simulated ticks landed in the stores.
    std::uint64_t ticks = 0;
    for (const auto &info : daemon.scheduler().status()) {
        if (info.state != "complete") {
            std::fprintf(stderr, "FAIL: %s ended %s\n",
                         info.id.c_str(), info.state.c_str());
            ++errors;
            continue;
        }
        auto store = campaign::ResultStore::openReadOnly(
            daemon.scheduler().storeDir(info.id));
        for (const auto &rec : store->groupRuns(0))
            ticks += rec.runtimeTicks;
    }
    daemon.shutdown();
    std::filesystem::remove_all(rootPath);
    if (errors.load())
        return false;

    out.mode = "c" + std::to_string(clients);
    out.campaigns = campaigns;
    out.wallSeconds = wall;
    out.simTicks = ticks;
    out.submitP50Ms = percentile(submitMs, 0.50);
    out.submitP99Ms = percentile(submitMs, 0.99);
    out.firstP50Ms = percentile(firstMs, 0.50);
    out.firstP99Ms = percentile(firstMs, 0.99);
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    std::size_t campaigns = bench::scaleRuns(32);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--campaigns") == 0 &&
                 i + 1 < argc)
            campaigns = std::max(
                1, std::atoi(argv[++i]));
    }

    bench::banner(
        "bench_serve_throughput",
        "campaign service: submissions, streaming, completion",
        "no paper analogue — operational envelope of the resident "
        "daemon the campaign methodology runs under");

    const std::size_t clientCounts[] = {1, 4, 8};
    std::vector<Row> rows;
    for (const std::size_t c : clientCounts) {
        Row row;
        if (!runRow(c, campaigns, row))
            return 1;
        rows.push_back(row);
        std::printf(
            "%-4s %3zu campaigns %7.3fs  %6.1f camp/s  "
            "submit p50/p99 %5.2f/%5.2f ms  "
            "first-result p50/p99 %6.1f/%6.1f ms\n",
            row.mode.c_str(), row.campaigns, row.wallSeconds,
            row.campaignsPerSec(), row.submitP50Ms,
            row.submitP99Ms, row.firstP50Ms, row.firstP99Ms);
    }

    if (!jsonPath.empty()) {
        std::ofstream f(jsonPath);
        emitJson(f, rows);
        std::printf("wrote %s\n", jsonPath.c_str());
    } else {
        emitJson(std::cout, rows);
    }
    return 0;
}
