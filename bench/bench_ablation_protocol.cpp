/**
 * @file
 * Protocol ablation: is the paper's variability phenomenon an
 * artifact of broadcast snooping, or inherent to the workload?
 *
 * The same OLTP experiment runs under both coherence fabrics
 * (MOSI broadcast snooping, as in the paper's E10000 target, and a
 * home-node MOSI directory). Expectation: absolute performance
 * differs (directory 3-hop forwarding is slower for
 * migratory/shared data), but the space-variability profile — CoV,
 * range, the need for multiple runs — persists, because divergence
 * comes from OS scheduling and lock races, not from the protocol.
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Protocol ablation",
        "snooping vs directory coherence under the methodology",
        "variability is workload-inherent: both protocols need the "
        "multi-run statistics (the paper's simulator supported "
        "multiple protocols, Section 3.2.3)");

    const std::size_t numRuns = bench::scaleRuns(12);
    core::RunConfig rc;
    rc.warmupTxns = 100;
    rc.measureTxns = bench::scaleTxns(200);

    struct Row
    {
        const char *name;
        mem::CoherenceProtocol protocol;
    };
    const Row rows[] = {
        {"MOSI broadcast snooping", mem::CoherenceProtocol::Snooping},
        {"MOSI home directory", mem::CoherenceProtocol::Directory},
    };

    stats::Table t({"protocol", "mean cpt", "CoV %", "range %",
                    "c2c/run", "nacks/run"});
    std::vector<std::vector<double>> metric;
    for (const Row &row : rows) {
        core::SystemConfig sys = bench::paperSystem();
        sys.mem.protocol = row.protocol;
        core::ExperimentConfig exp;
        exp.numRuns = numRuns;
        const auto results =
            core::runMany(sys, bench::oltpWorkload(), rc, exp);
        metric.push_back(core::metricOf(results));
        const auto rep = core::analyze(results);
        stats::RunningStat c2c, nacks;
        for (const auto &r : results) {
            c2c.add(static_cast<double>(r.mem.cacheToCache));
            nacks.add(static_cast<double>(r.mem.nacks));
        }
        t.addRow({row.name, stats::fmtF(rep.summary.mean, 0),
                  stats::fmtF(rep.coefficientOfVariation, 2),
                  stats::fmtF(rep.rangeOfVariability, 2),
                  stats::fmtF(c2c.mean(), 0),
                  stats::fmtF(nacks.mean(), 0)});
        std::fflush(stdout);
    }
    std::printf("%s", t.render().c_str());

    const auto cmp = core::compare(metric[1], metric[0]);
    std::printf("\nprotocol comparison under the methodology:\n%s\n",
                cmp.toString().c_str());
    std::printf("\nreading guide: both rows must show a "
                "several-percent CoV — the divergence mechanisms "
                "(lock races, quantum expiry) are protocol-"
                "independent\n");
    return 0;
}
