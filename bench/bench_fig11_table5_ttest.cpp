/**
 * @file
 * Figure 11 + Table 5 + the Section 5.1.1 worked example: the
 * hypothesis-testing machinery.
 *
 *  - Figure 11 illustrates the one-sided t-test's acceptance and
 *    rejection regions; here the critical values and the measured
 *    test statistic are printed for the ROB experiment.
 *  - Table 5 gives the runs needed per significance level for that
 *    experiment: 10% -> 6, 5% -> 9, 2.5% -> 11, 1% -> 13,
 *    0.5% -> 16 runs.
 *  - The worked example: relative error 4%, confidence 95%,
 *    CoV 9% -> ~20 runs by the mean-precision formula.
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Figure 11 + Table 5",
        "hypothesis testing and sample-size estimation (ROB 32 vs "
        "64)",
        "t-test rejects H0 at progressively tighter alphas with "
        "more runs; Table 5: 6/9/11/13/16 runs for "
        "10/5/2.5/1/0.5% significance");

    const std::size_t numRuns = bench::scaleRuns(20);
    core::RunConfig rc;
    rc.warmupTxns = 50;
    rc.measureTxns = bench::scaleTxns(50);
    core::ExperimentConfig exp;
    exp.numRuns = numRuns;

    std::vector<std::vector<double>> metric;
    for (std::uint32_t rob : {32u, 64u}) {
        core::SystemConfig sys = bench::paperSystem();
        sys.cpu.model = cpu::CpuConfig::Model::OutOfOrder;
        sys.cpu.robEntries = rob;
        exp.baseSeed = 2000 + rob;
        metric.push_back(core::metricOf(core::runMany(
            sys, bench::oltpWorkload(), rc, exp)));
    }

    // ---- Figure 11: the test statistic vs critical values ----
    const auto test = stats::pooledTTest(metric[0], metric[1]);
    std::printf("H0: mean(32-entry) == mean(64-entry); H1: "
                "mean(32) > mean(64)\n");
    std::printf("pooled t statistic = %.3f with %g degrees of "
                "freedom (one-sided p = %.4g)\n\n",
                test.statistic, test.degreesOfFreedom,
                test.pValueOneSided);

    stats::Table f({"significance level", "critical t",
                    "test statistic", "verdict"});
    for (double alpha : {0.10, 0.05, 0.025, 0.01, 0.005}) {
        const double crit =
            stats::tCriticalOneSided(alpha, test.degreesOfFreedom);
        f.addRow({stats::fmtF(100.0 * alpha, 1) + "%",
                  stats::fmtF(crit, 3),
                  stats::fmtF(test.statistic, 3),
                  test.statistic >= crit
                      ? "reject H0 (accept H1)"
                      : "cannot reject H0"});
    }
    std::printf("%s", f.render().c_str());

    // ---- Table 5: runs needed per significance level ----
    const auto s32 = stats::summarize(metric[0]);
    const auto s64 = stats::summarize(metric[1]);
    const double diff = s32.mean - s64.mean;
    std::printf("\nTable 5 (runs needed, from pilot estimates "
                "diff=%.0f, sd32=%.0f, sd64=%.0f):\n", diff,
                s32.stddev, s64.stddev);
    stats::Table t5({"Significance Level", "#Runs measured",
                     "#Runs paper"});
    const double alphas[] = {0.10, 0.05, 0.025, 0.01, 0.005};
    const int paperRuns[] = {6, 9, 11, 13, 16};
    for (int i = 0; i < 5; ++i) {
        const std::size_t n =
            diff > 0 ? stats::runsNeededForSignificance(
                           diff, s32.stddev * s32.stddev,
                           s64.stddev * s64.stddev, alphas[i])
                     : 9999;
        t5.addRow({stats::fmtF(100.0 * alphas[i], 1) + "%",
                   std::to_string(n),
                   std::to_string(paperRuns[i])});
    }
    std::printf("%s", t5.render().c_str());

    // ---- Section 5.1.1 worked example ----
    std::printf("\nmean-precision sample size (Section 5.1.1):\n");
    std::printf("  paper's example: CoV=9%%, error 4%%, 95%% "
                "confidence -> n = %zu (paper: ~20)\n",
                stats::meanPrecisionSampleSize(0.09, 0.04, 0.95));
    const double measuredCov =
        s32.coefficientOfVariation() / 100.0;
    std::printf("  with our measured 50-txn CoV of %.1f%%: "
                "n = %zu runs for a 4%% error bound\n",
                100.0 * measuredCov,
                stats::meanPrecisionSampleSize(measuredCov, 0.04,
                                               0.95));
    return 0;
}
