/**
 * @file
 * Table 4: "OLTP space variability for different run lengths."
 *
 * Twenty runs at 200/400/600/800/1000 measured transactions. The
 * paper: CoV falls 3.27 -> 0.98% and range 12.72 -> 3.86% as the
 * run grows from 200 to 1000 transactions — variability can be
 * reduced by simulating longer, but at a proportional cost in
 * simulation time (their table also reports the runtime growing
 * from 1.79 to 9.26 hours per run; we report host seconds).
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Table 4", "OLTP space variability vs run length, 20 runs",
        "CoV: 3.27/2.87/2.16/1.53/0.98%; range: "
        "12.72/10.40/7.65/5.47/3.86%; runtime grows linearly");

    const std::size_t numRuns = bench::scaleRuns(20);
    const std::uint64_t lengths[] = {200, 400, 600, 800, 1000};
    const double paperCov[] = {3.27, 2.87, 2.16, 1.53, 0.98};
    const double paperRange[] = {12.72, 10.40, 7.65, 5.47, 3.86};

    stats::Table t({"#txns", "CoV %", "paper", "Range %", "paper",
                    "avg sim ns/run", "host s (all runs)"});
    std::size_t i = 0;
    for (std::uint64_t len : lengths) {
        core::RunConfig rc;
        rc.warmupTxns = 100;
        rc.measureTxns = bench::scaleTxns(len);
        core::ExperimentConfig exp;
        exp.numRuns = numRuns;

        bench::Stopwatch sw;
        const auto results = core::runMany(
            bench::paperSystem(), bench::oltpWorkload(), rc, exp);
        const double host = sw.seconds();

        const auto rep = core::analyze(results);
        stats::RunningStat ticks;
        for (const auto &r : results)
            ticks.add(static_cast<double>(r.runtimeTicks));
        t.addRow({std::to_string(rc.measureTxns),
                  stats::fmtF(rep.coefficientOfVariation, 2),
                  stats::fmtF(paperCov[i], 2),
                  stats::fmtF(rep.rangeOfVariability, 2),
                  stats::fmtF(paperRange[i], 2),
                  stats::fmtF(ticks.mean(), 0),
                  stats::fmtF(host, 2)});
        ++i;
        std::fflush(stdout);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nexpected shape: CoV and range fall "
                "monotonically (roughly as 1/sqrt(N)) while cost "
                "grows linearly — the tradeoff motivating the "
                "multiple-short-runs methodology of Section 5\n");
    return 0;
}
