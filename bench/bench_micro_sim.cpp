/**
 * @file
 * Microbenchmarks of the simulator's hot paths (google-benchmark):
 * the event queue, the RNG, tag-array probes, coherence
 * transactions, the statistics kernels, and end-to-end simulated
 * transaction throughput. These quantify the simulator's own cost —
 * the paper's motivation for a multiple-short-runs methodology is
 * that simulation is ~24,000x slower than the target (Section 1),
 * so per-event costs decide what experiments are feasible.
 */

#include <benchmark/benchmark.h>

#include "core/varsim.hh"
#include "cpu/simple_cpu.hh"

using namespace varsim;

namespace
{

void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    sim::EventQueue eq;
    class Nop : public sim::Event
    {
      public:
        void process() override {}
    };
    std::vector<Nop> events(64);
    std::uint64_t t = 0;
    for (auto _ : state) {
        for (auto &ev : events)
            eq.schedule(&ev, t + 1 + (&ev - events.data()) % 16);
        while (!eq.empty())
            eq.step();
        t = eq.curTick();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void
BM_RandomNext(benchmark::State &state)
{
    sim::Random rng(1);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.next();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomNext);

void
BM_RandomUniformInt(benchmark::State &state)
{
    sim::Random rng(1);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.uniformInt(0, 4);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomUniformInt);

void
BM_ZipfSample(benchmark::State &state)
{
    sim::Random rng(1);
    sim::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)),
                          1.0);
    std::size_t sink = 0;
    for (auto _ : state)
        sink += zipf.sample(rng);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(65536);

void
BM_CacheArrayHit(benchmark::State &state)
{
    mem::CacheArray array(4 * 1024 * 1024, 4, 64);
    mem::CacheLine victim;
    for (sim::Addr a = 0; a < 256 * 64; a += 64) {
        auto [line, _] = array.allocate(a, victim);
        line->state = mem::LineState::Shared;
    }
    sim::Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.findAndTouch(a));
        a = (a + 64) % (256 * 64);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayHit);

void
BM_CoherenceTransaction(benchmark::State &state)
{
    // One full L2-miss round trip (request, snoop, fill) through
    // the 16-node memory system.
    sim::EventQueue eq;
    mem::MemConfig cfg;
    mem::MemSystem ms("mem", eq, cfg);
    struct Sink : mem::MemClient
    {
        void memResponse(std::uint64_t) override {}
    } sink;
    ms.dcache(0).setClient(&sink);
    sim::Addr a = 0x1000'0000;
    std::uint64_t tag = 0;
    for (auto _ : state) {
        ms.dcache(0).access({a, false, false, ++tag});
        eq.run();
        a += 64; // always a fresh block: every access is a miss
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherenceTransaction);

void
BM_StudentTQuantile(benchmark::State &state)
{
    double p = 0.90;
    double sink = 0.0;
    for (auto _ : state) {
        sink += stats::studentTQuantile(p, 19.0);
        p = p > 0.99 ? 0.90 : p + 0.0001;
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_StudentTQuantile);

void
BM_OneWayAnova(benchmark::State &state)
{
    std::vector<std::vector<double>> groups(8);
    for (std::size_t g = 0; g < groups.size(); ++g)
        for (int i = 0; i < 20; ++i)
            groups[g].push_back(double(g) + 0.1 * i);
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::oneWayAnova(groups));
}
BENCHMARK(BM_OneWayAnova);

void
BM_OltpTransactionThroughput(benchmark::State &state)
{
    // End-to-end simulated OLTP transactions per host-second on the
    // 16-CPU paper target.
    core::SystemConfig sys;
    workload::WorkloadParams wl;
    core::Simulation simn(sys, wl);
    simn.seedPerturbation(1);
    simn.runTransactions(50); // boot + warm
    for (auto _ : state)
        simn.runTransactions(10);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_OltpTransactionThroughput)
    ->Unit(benchmark::kMillisecond);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    // Op-stream generation cost alone (no timing simulation).
    sim::EventQueue eq;
    mem::MemConfig mcfg;
    mem::MemSystem ms("mem", eq, mcfg);
    cpu::CpuConfig ccfg;
    std::vector<std::unique_ptr<cpu::BaseCpu>> cpus;
    std::vector<cpu::BaseCpu *> ptrs;
    for (int i = 0; i < 16; ++i) {
        cpus.push_back(std::make_unique<cpu::SimpleCpu>(
            sim::format("cpu%d", i), eq, ccfg, ms.icache(i),
            ms.dcache(i), i));
        ptrs.push_back(cpus.back().get());
    }
    os::OsConfig oscfg;
    os::Kernel kernel("kernel", eq, oscfg, ptrs);
    workload::WorkloadParams params;
    auto wl = workload::Workload::build(params, kernel, 16, 64);
    cpu::OpStream &s = kernel.thread(0).stream();
    std::uint64_t ops = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            benchmark::DoNotOptimize(s.current());
            s.advance();
            ++ops;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_WorkloadGeneration);

} // anonymous namespace

BENCHMARK_MAIN();
