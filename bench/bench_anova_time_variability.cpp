/**
 * @file
 * Section 5.2: "Accounting for Time Variability" — the ANOVA study.
 *
 * Groups = runs started from different checkpoints of a workload's
 * lifetime (the Figure 9 data). One-way ANOVA asks whether
 * between-group (time) variability can be attributed to within-group
 * (space) variability. The paper: "for both of these workloads
 * [OLTP and SPECjbb], time variability is significant, and
 * simulations should be performed from different starting points."
 */

#include "bench/common.hh"

using namespace varsim;

namespace
{

void
anovaFor(workload::WorkloadKind kind, std::uint64_t step,
         std::uint64_t measure)
{
    workload::WorkloadParams wl;
    wl.kind = kind;
    const core::SystemConfig sys = bench::paperSystem();
    const std::size_t numGroups = bench::quick() ? 4 : 6;
    const std::size_t runsPerGroup = bench::scaleRuns(8);

    core::Simulation warmer(sys, wl);
    warmer.seedPerturbation(777);

    std::vector<std::vector<double>> groups;
    for (std::size_t g = 0; g < numGroups; ++g) {
        warmer.runTransactions(step);
        const core::Checkpoint cp = warmer.checkpoint();
        core::RunConfig rc;
        rc.measureTxns = measure;
        core::ExperimentConfig exp;
        exp.numRuns = runsPerGroup;
        exp.baseSeed = 40000 + 1000 * g;
        groups.push_back(core::metricOf(
            core::runManyFromCheckpoint(sys, wl, cp, rc, exp)));
    }

    const auto report = core::checkpointAnova(groups, 0.05);
    std::printf("\n%s (%zu groups x %zu runs):\n",
                workload::kindName(kind), numGroups, runsPerGroup);
    stats::Table t({"group (warmup txns)", "mean", "sd"});
    for (std::size_t g = 0; g < numGroups; ++g) {
        const auto s = stats::summarize(groups[g]);
        t.addRow({std::to_string(step * (g + 1)),
                  stats::fmtF(s.mean, 0),
                  stats::fmtF(s.stddev, 0)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("%s\n", report.toString().c_str());
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Section 5.2 ANOVA", "is time variability significant?",
        "for both OLTP and SPECjbb, between-checkpoint variability "
        "is significant and cannot be attributed to within-group "
        "(space) variability");

    anovaFor(workload::WorkloadKind::Oltp, bench::scaleTxns(600),
             bench::scaleTxns(200));
    anovaFor(workload::WorkloadKind::SpecJbb,
             bench::scaleTxns(1600), bench::scaleTxns(800));
    return 0;
}
