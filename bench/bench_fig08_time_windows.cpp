/**
 * @file
 * Figure 8: "Time variability for different phases of long OLTP
 * runs."
 *
 * The paper ran ten 40,000-transaction OLTP simulations (a month of
 * simulation time each!) and plotted the mean and standard deviation
 * of cycles per transaction for every 200-transaction window,
 * finding swings of up to 27% across the workload's lifetime. Here
 * the run length is scaled down but the windowed series, the
 * across-run error bars and the swing metric are reproduced.
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Figure 8", "windowed cycles/txn across long OLTP runs",
        "cycles/txn per 200-txn window varies by up to ~27% across "
        "phases; error bars (across 10 runs) are much smaller than "
        "the phase swings");

    const std::size_t numRuns = bench::scaleRuns(10);
    const std::uint64_t total = bench::scaleTxns(6000);
    const std::uint64_t window = 200;

    core::RunConfig rc;
    rc.warmupTxns = 400; // past the cold start; the paper measures
                         // a warmed database
    rc.measureTxns = total;
    rc.windowTxns = window;
    core::ExperimentConfig exp;
    exp.numRuns = numRuns;

    const auto results = core::runMany(bench::paperSystem(),
                                       bench::oltpWorkload(), rc,
                                       exp);

    std::size_t windows = results[0].windows.size();
    for (const auto &r : results)
        windows = std::min(windows, r.windows.size());

    stats::RunningStat means;
    std::vector<double> windowMean(windows), windowSd(windows);
    for (std::size_t w = 0; w < windows; ++w) {
        stats::RunningStat at;
        for (const auto &r : results)
            at.add(r.windows[w]);
        windowMean[w] = at.mean();
        windowSd[w] = at.stddev();
        means.add(at.mean());
    }

    std::printf("%zu windows of %llu txns, %zu runs\n\n", windows,
                static_cast<unsigned long long>(window), numRuns);
    std::printf("%-8s %-12s %-8s %s\n", "window", "mean cpt", "sd",
                "profile");
    for (std::size_t w = 0; w < windows; ++w) {
        std::printf("%-8zu %-12.0f %-8.0f %s\n", w, windowMean[w],
                    windowSd[w],
                    bench::strip(windowMean[w] - windowSd[w],
                                 windowMean[w],
                                 windowMean[w] + windowSd[w],
                                 means.min() * 0.97,
                                 means.max() * 1.03, 44)
                        .c_str());
    }

    const double swing =
        100.0 * (means.max() - means.min()) / means.mean();
    stats::RunningStat sdStat;
    for (double sd : windowSd)
        sdStat.add(sd);
    std::printf("\nphase swing across windows: %.1f%% of the mean "
                "(paper: up to ~27%%)\n", swing);
    std::printf("average across-run sd within a window: %.0f "
                "(%.1f%% of mean) — time variability dominates "
                "space variability at this granularity\n",
                sdStat.mean(), 100.0 * sdStat.mean() / means.mean());
    return 0;
}
