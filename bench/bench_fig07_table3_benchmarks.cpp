/**
 * @file
 * Figure 7 + Table 3: "Summary of space variability for different
 * benchmarks."
 *
 * Twenty runs of each of the seven benchmarks on the 16-processor
 * target with the simple model, run lengths per the paper's Table 3
 * (scaled). Paper's findings: variability ranges from <1%
 * (Barnes-Hut) to >14% range for Slashcode; the range exceeds 3%
 * for four of five commercial workloads; OLTP is not an extreme
 * case.
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Figure 7 + Table 3",
        "space variability across the seven benchmarks, 20 runs",
        "CoV: Barnes .16, Ocean .31, ECPerf 1.4, Slashcode 3.6, "
        "OLTP .98, Apache .88, SPECjbb .26 (%); range: .59, 1.13, "
        "5.3, 14.45, 3.85, 3.94, 1.1 (%)");

    struct Bench
    {
        workload::WorkloadKind kind;
        std::uint64_t txns;   // measured (paper Table 3, scaled)
        std::uint64_t warmup;
        double paperCov;
        double paperRange;
    };
    const Bench benches[] = {
        {workload::WorkloadKind::Barnes, 1, 0, 0.16, 0.59},
        {workload::WorkloadKind::Ocean, 1, 0, 0.31, 1.13},
        {workload::WorkloadKind::EcPerf, 5, 20, 1.40, 5.30},
        {workload::WorkloadKind::Slashcode, 30, 10, 3.60, 14.45},
        {workload::WorkloadKind::Oltp, 400, 100, 0.98, 3.85},
        {workload::WorkloadKind::Apache, 1000, 100, 0.88, 3.94},
        {workload::WorkloadKind::SpecJbb, 3000, 200, 0.26, 1.10},
    };

    const std::size_t numRuns = bench::scaleRuns(20);
    stats::Table t({"Benchmark", "#txns", "CoV %", "paper",
                    "Range %", "paper", "norm min|-o-|max"});
    for (const Bench &b : benches) {
        core::SystemConfig sys = bench::paperSystem();
        workload::WorkloadParams wl;
        wl.kind = b.kind;
        core::RunConfig rc;
        rc.warmupTxns = b.warmup;
        rc.measureTxns =
            b.txns > 10 ? bench::scaleTxns(b.txns) : b.txns;
        core::ExperimentConfig exp;
        exp.numRuns = numRuns;

        const auto results = core::runMany(sys, wl, rc, exp);
        const auto rep = core::analyze(results);
        const auto &s = rep.summary;
        // Figure 7 normalizes each benchmark to its own mean.
        t.addRow({workload::kindName(b.kind),
                  std::to_string(rc.measureTxns),
                  stats::fmtF(rep.coefficientOfVariation, 2),
                  stats::fmtF(b.paperCov, 2),
                  stats::fmtF(rep.rangeOfVariability, 2),
                  stats::fmtF(b.paperRange, 2),
                  bench::strip(s.min / s.mean, 1.0, s.max / s.mean,
                               0.9, 1.1, 32)});
        std::fflush(stdout);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nexpected shape: Slashcode worst by far; "
                "scientific codes and SPECjbb smallest; commercial "
                "workloads mostly exceed a 3%% range\n");
    return 0;
}
