/**
 * @file
 * Figure 9: "OLTP and SPECjbb performance from multiple starting
 * points."
 *
 * A workload is warmed to ten different points; from each checkpoint
 * twenty runs with distinct perturbation seeds measure a short
 * interval. The paper finds:
 *  (a) OLTP: which checkpoint you start from changes the mean by
 *      >16%, with real per-checkpoint spread too;
 *  (b) SPECjbb: per-checkpoint spread is negligible (almost no
 *      space variability) yet means differ by >36% across
 *      checkpoints — time variability matters even for workloads
 *      with no space variability.
 */

#include "bench/common.hh"

using namespace varsim;

namespace
{

void
runWorkload(workload::WorkloadKind kind, std::uint64_t step,
            std::uint64_t measure, std::size_t num_checkpoints,
            std::size_t runs_per_checkpoint)
{
    workload::WorkloadParams wl;
    wl.kind = kind;
    const core::SystemConfig sys = bench::paperSystem();

    // One warming simulation; snapshot at each starting point.
    core::Simulation warmer(sys, wl);
    warmer.seedPerturbation(555);
    std::vector<core::Checkpoint> cps;
    for (std::size_t c = 0; c < num_checkpoints; ++c) {
        warmer.runTransactions(step);
        cps.push_back(warmer.checkpoint());
        std::fflush(stdout);
    }

    std::printf("\n%s: %zu checkpoints every %llu txns, %zu runs "
                "of %llu txns each\n",
                workload::kindName(kind), num_checkpoints,
                static_cast<unsigned long long>(step),
                runs_per_checkpoint,
                static_cast<unsigned long long>(measure));

    stats::Table t({"warmup txns", "min", "avg", "max", "sd",
                    "CoV %", "min|-o-|max"});
    std::vector<double> checkpointMeans;
    double allLo = 1e300, allHi = 0.0;
    std::vector<stats::Summary> sums;
    for (std::size_t c = 0; c < num_checkpoints; ++c) {
        core::RunConfig rc;
        rc.measureTxns = measure;
        core::ExperimentConfig exp;
        exp.numRuns = runs_per_checkpoint;
        exp.baseSeed = 10000 + 100 * c;
        const auto results = core::runManyFromCheckpoint(
            sys, wl, cps[c], rc, exp);
        const auto s = stats::summarize(core::metricOf(results));
        sums.push_back(s);
        checkpointMeans.push_back(s.mean);
        allLo = std::min(allLo, s.min);
        allHi = std::max(allHi, s.max);
    }
    for (std::size_t c = 0; c < num_checkpoints; ++c) {
        const auto &s = sums[c];
        t.addRow({std::to_string(step * (c + 1)),
                  stats::fmtF(s.min, 0), stats::fmtF(s.mean, 0),
                  stats::fmtF(s.max, 0), stats::fmtF(s.stddev, 0),
                  stats::fmtF(s.coefficientOfVariation(), 2),
                  bench::strip(s.min, s.mean, s.max, allLo, allHi,
                               36)});
    }
    std::printf("%s", t.render().c_str());

    const auto across = stats::summarize(checkpointMeans);
    std::printf("spread of per-checkpoint means: %.1f%% of the "
                "grand mean\n",
                across.rangeOfVariability());
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 9", "performance from multiple starting points",
        "OLTP: >16% difference between checkpoint means; SPECjbb: "
        "negligible per-checkpoint sd but >36% between checkpoints");

    const std::size_t ckpts = bench::quick() ? 5 : 10;
    const std::size_t runs = bench::scaleRuns(20);
    runWorkload(workload::WorkloadKind::Oltp,
                bench::scaleTxns(400), bench::scaleTxns(200),
                ckpts, runs);
    runWorkload(workload::WorkloadKind::SpecJbb,
                bench::scaleTxns(1600), bench::scaleTxns(800),
                ckpts, runs);

    std::printf("\nexpected shape: OLTP shows both between- and "
                "within-checkpoint spread; SPECjbb shows almost "
                "zero within-checkpoint spread but large "
                "between-checkpoint differences (the GC sawtooth)\n");
    return 0;
}
