/**
 * @file
 * Figure 3: "OLTP space variability in a real system for different
 * observation intervals (five runs)."
 *
 * Five runs from the same initial conditions (different perturbation
 * seeds — the analog of five reboots of the E5000), cycles/txn
 * bucketed by observation interval. The figure's message: the
 * between-run spread (error bars) is significant at small intervals
 * and shrinks as the interval grows.
 */

#include "bench/common.hh"

using namespace varsim;

namespace
{

/** Per-interval cycles/txn series for one run. */
std::vector<double>
runSeries(std::uint64_t seed, std::uint64_t total,
          sim::Tick interval_base, std::uint64_t mult,
          double ncpus)
{
    core::SystemConfig sys = bench::paperSystem();
    core::Simulation simn(sys, bench::oltpWorkload());
    simn.seedPerturbation(seed);
    simn.recordCompletions(true);
    simn.runTransactions(200);
    const sim::Tick start = simn.now();
    const std::size_t skip = simn.completions().size();
    simn.runTransactions(total);

    const sim::Tick interval = interval_base * mult;
    std::vector<double> series;
    const auto &recs = simn.completions();
    sim::Tick winStart = start;
    std::uint64_t count = 0;
    for (std::size_t i = skip; i < recs.size(); ++i) {
        while (recs[i].when >= winStart + interval) {
            if (count > 0) {
                series.push_back(static_cast<double>(interval) *
                                 ncpus /
                                 static_cast<double>(count));
            }
            winStart += interval;
            count = 0;
        }
        ++count;
    }
    return series;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 3", "OLTP space variability vs observation interval",
        "five runs: wide error bars at 1s and 10s intervals, "
        "greatly reduced at 60s");

    const std::uint64_t total = bench::scaleTxns(4000);
    const std::size_t numRuns = 5;
    const double ncpus =
        static_cast<double>(bench::paperSystem().numCpus());

    // Calibrate the base interval from one pilot run.
    sim::Tick intervalBase;
    {
        core::Simulation pilot(bench::paperSystem(),
                               bench::oltpWorkload());
        pilot.seedPerturbation(1);
        pilot.runTransactions(200);
        const sim::Tick s = pilot.now();
        pilot.runTransactions(total);
        intervalBase = (pilot.now() - s) / 80;
    }

    for (const std::uint64_t mult : {1ull, 10ull, 40ull}) {
        // Collect all runs' series.
        std::vector<std::vector<double>> all;
        for (std::size_t r = 0; r < numRuns; ++r) {
            all.push_back(runSeries(100 + r, total, intervalBase,
                                    mult, ncpus));
        }
        std::size_t points = all[0].size();
        for (const auto &s : all)
            points = std::min(points, s.size());

        // Across-run spread at each interval index.
        stats::RunningStat spread; // sd/mean per interval
        for (std::size_t i = 0; i < points; ++i) {
            stats::RunningStat at;
            for (const auto &s : all)
                at.add(s[i]);
            if (at.mean() > 0)
                spread.add(100.0 * at.stddev() / at.mean());
        }
        std::printf("interval = %3llux base: %zu points/run, "
                    "between-run CoV per interval: avg=%.2f%% "
                    "max=%.2f%%\n",
                    static_cast<unsigned long long>(mult), points,
                    spread.mean(), spread.max());
    }

    std::printf("\nexpected shape: the between-run CoV per "
                "interval falls as the interval grows\n");
    return 0;
}
