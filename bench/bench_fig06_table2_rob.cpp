/**
 * @file
 * Figure 6 + Table 2 — Experiment 2: "Microarchitectural Design."
 *
 * Twenty 50-transaction OLTP runs with the detailed out-of-order
 * (TFsim-like) processor model per reorder-buffer size (16, 32, 64
 * entries). Expected: runtime decreases with ROB size on average;
 * ranges overlap; WCR 18% (16 vs 32), 7.5% (16 vs 64), 26% (32 vs
 * 64).
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Figure 6 + Table 2",
        "OLTP cycles/txn vs ROB size (out-of-order model), 20 runs",
        "means fall 16 -> 32 -> 64 with overlapping ranges; WCR: "
        "16/32=18%, 16/64=7.5%, 32/64=26%");

    const std::size_t numRuns = bench::scaleRuns(20);
    core::RunConfig rc;
    rc.warmupTxns = 50;
    rc.measureTxns = bench::scaleTxns(50);
    core::ExperimentConfig exp;
    exp.numRuns = numRuns;

    const std::uint32_t robs[] = {16, 32, 64};
    std::vector<std::vector<double>> metric;
    std::vector<core::VariabilityReport> reports;

    for (std::uint32_t rob : robs) {
        core::SystemConfig sys = bench::paperSystem();
        sys.cpu.model = cpu::CpuConfig::Model::OutOfOrder;
        sys.cpu.robEntries = rob;
        const auto results =
            core::runMany(sys, bench::oltpWorkload(), rc, exp);
        metric.push_back(core::metricOf(results));
        reports.push_back(core::analyze(results));
    }

    double lo = 1e300, hi = 0;
    for (const auto &r : reports) {
        lo = std::min(lo, r.summary.min);
        hi = std::max(hi, r.summary.max);
    }
    stats::Table fig({"ROB", "min", "avg", "max", "sd",
                      "min|--o--|max"});
    for (std::size_t i = 0; i < 3; ++i) {
        const auto &s = reports[i].summary;
        fig.addRow({std::to_string(robs[i]), stats::fmtF(s.min, 0),
                    stats::fmtF(s.mean, 0), stats::fmtF(s.max, 0),
                    stats::fmtF(s.stddev, 0),
                    bench::strip(s.min, s.mean, s.max, lo, hi, 40)});
    }
    std::printf("%s", fig.render().c_str());

    struct Pair
    {
        std::size_t a, b;
        const char *label;
        double paperWcr;
    };
    const Pair pairs[] = {
        {0, 1, "16-entry vs (32-entry) ROB", 18.0},
        {0, 2, "16-entry vs (64-entry) ROB", 7.5},
        {1, 2, "32-entry vs (64-entry) ROB", 26.0},
    };
    stats::Table t2({"Configurations Compared (Superior)",
                     "WCR measured", "WCR paper"});
    for (const Pair &p : pairs) {
        const double wcr = 100.0 * stats::wrongConclusionRatio(
                                       metric[p.a], metric[p.b]);
        t2.addRow({p.label, stats::fmtF(wcr, 1) + "%",
                   stats::fmtF(p.paperWcr, 1) + "%"});
    }
    std::printf("\nTable 2 (wrong conclusion ratio over all run "
                "pairs):\n%s", t2.render().c_str());

    std::printf("\nnote: the OoO model's absolute cycles/txn is "
                "lower than Experiment 1's simple model, as in the "
                "paper (footnote 3)\n");
    return 0;
}
