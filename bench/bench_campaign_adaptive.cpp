/**
 * @file
 * Adaptive-stopping campaign vs the paper's fixed-run practice.
 *
 * Table 5 reports the number of runs needed before the ROB 32-vs-64
 * comparison becomes significant at progressively tighter levels:
 * 10% -> 6, 5% -> 9, 2.5% -> 11, 1% -> 13, 0.5% -> 16 runs — always
 * fewer than the paper's routine 20 runs per configuration. Here the
 * campaign engine closes that loop: for each significance level it
 * runs a full durable campaign whose stopping controller extends the
 * pilot only until the pairwise t-test resolves, then we check two
 * properties: the per-level run counts are monotone non-decreasing
 * as the level tightens (the Table 5 ordering), and every adaptive
 * campaign records strictly fewer total runs than a fixed 20-per-
 * configuration campaign of the same pair.
 */

#include <filesystem>

#include "bench/common.hh"
#include "campaign/campaign.hh"

using namespace varsim;

namespace
{

/** The Table 5 experiment: OLTP on ROB 32 vs 64 out-of-order CPUs. */
campaign::CampaignSpec
robSpec(std::size_t pilot_runs, std::size_t max_runs)
{
    campaign::CampaignSpec spec;
    for (std::uint32_t rob : {32u, 64u}) {
        core::SystemConfig sys = bench::paperSystem();
        sys.cpu.model = cpu::CpuConfig::Model::OutOfOrder;
        sys.cpu.robEntries = rob;
        spec.configs.push_back(
            {"rob-" + std::to_string(rob), sys});
    }
    spec.wl = bench::oltpWorkload();
    spec.run.warmupTxns = 50;
    spec.run.measureTxns = bench::scaleTxns(50);
    spec.baseSeed = 2000;
    spec.stop.pilotRuns = pilot_runs;
    spec.stop.maxRuns = max_runs;
    spec.stop.relativeError = 0.0; // pairwise criterion only
    return spec;
}

/** Run one campaign in a fresh store; return total recorded runs. */
std::size_t
totalRuns(campaign::CampaignSpec spec, const std::string &tag)
{
    std::string leaf = "varsim_bench_adaptive_";
    leaf += tag;
    leaf += ".camp";
    const std::string dir =
        (std::filesystem::temp_directory_path() / leaf).string();
    std::filesystem::remove_all(dir);
    const auto outcome = campaign::runCampaign(spec, dir);
    std::filesystem::remove_all(dir);
    return outcome.runsRecorded;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Campaign adaptive stopping (Table 5 closed-loop)",
        "durable campaigns that stop when the ROB 32 vs 64 t-test "
        "resolves",
        "Table 5: 6/9/11/13/16 runs at 10/5/2.5/1/0.5% "
        "significance, all below the routine 20 runs/config");

    const std::size_t pilot = bench::scaleRuns(6) < 4
                                  ? 4
                                  : bench::scaleRuns(6);
    const std::size_t maxRuns = 32;
    const std::size_t fixedK = 20;

    // ---- fixed-K baseline: the paper's routine practice ----
    campaign::CampaignSpec fixed = robSpec(pilot, maxRuns);
    fixed.stop.fixedRuns = fixedK;
    const std::size_t fixedTotal = totalRuns(fixed, "fixed");
    std::printf("fixed-K baseline: %zu runs/config x %zu configs "
                "= %zu total runs\n\n",
                fixedK, fixed.configs.size(), fixedTotal);

    // ---- adaptive campaigns, one per significance level ----
    const double alphas[] = {0.10, 0.05, 0.025, 0.01, 0.005};
    const int paperRuns[] = {6, 9, 11, 13, 16};
    std::size_t totals[5] = {};
    stats::Table t({"Significance Level", "total runs (2 configs)",
                    "#Runs paper (per config)"});
    for (int i = 0; i < 5; ++i) {
        campaign::CampaignSpec spec = robSpec(pilot, maxRuns);
        spec.stop.alpha = alphas[i];
        std::string tag = "a";
        tag += std::to_string(i);
        totals[i] = totalRuns(spec, tag);
        t.addRow({stats::fmtF(100.0 * alphas[i], 1) + "%",
                  std::to_string(totals[i]),
                  std::to_string(paperRuns[i])});
    }
    std::printf("%s\n", t.render().c_str());

    // ---- acceptance checks ----
    bool monotone = true;
    for (int i = 1; i < 5; ++i)
        monotone = monotone && totals[i] >= totals[i - 1];
    bool allBelowFixed = true;
    for (std::size_t total : totals)
        allBelowFixed = allBelowFixed && total < fixedTotal;

    std::printf("monotone run counts as significance tightens: "
                "%s\n", monotone ? "yes" : "NO");
    std::printf("every adaptive campaign below the fixed-%zu "
                "baseline (%zu runs): %s\n",
                fixedK, fixedTotal, allBelowFixed ? "yes" : "NO");
    return monotone && allBelowFixed ? 0 : 1;
}
