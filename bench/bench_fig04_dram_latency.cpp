/**
 * @file
 * Figure 4: "Performance of 500-transaction OLTP runs with different
 * DRAM latencies."
 *
 * One run per DRAM latency from 80 to 90 ns, all other parameters
 * fixed, all starting from identical initial conditions. The paper's
 * point: the obvious expectation (cycles/txn creeps up with DRAM
 * latency) is violated by single runs — e.g. their 84 ns
 * configuration was 7% faster than the 81 ns one, because small
 * timing shifts flipped OS scheduling decisions.
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Figure 4", "single OLTP runs vs DRAM latency (80..90 ns)",
        "expected gentle upward trend is swamped by space "
        "variability; some slower-DRAM runs look faster (their "
        "84ns run beat the 81ns run by 7%)");

    const std::uint64_t txns = bench::scaleTxns(500);
    std::vector<double> cpt;
    for (sim::Tick dram = 80; dram <= 90; ++dram) {
        core::SystemConfig sys = bench::paperSystem();
        sys.mem.dramLatency = dram;
        sys.mem.perturbMaxNs = 0; // single deterministic runs:
                                  // the latency change IS the delta
        core::RunConfig rc;
        rc.warmupTxns = 100;
        rc.measureTxns = txns;
        const core::RunResult r =
            core::runOnce(sys, bench::oltpWorkload(), rc);
        cpt.push_back(r.cyclesPerTxn);
    }

    const auto s = stats::summarize(cpt);
    stats::Table t({"DRAM (ns)", "cycles/txn", "vs 80ns", ""});
    for (std::size_t i = 0; i < cpt.size(); ++i) {
        t.addRow({std::to_string(80 + i), stats::fmtF(cpt[i], 0),
                  stats::fmtF(100.0 * (cpt[i] / cpt[0] - 1.0), 2) +
                      "%",
                  bench::strip(s.min, cpt[i], s.max, s.min, s.max,
                               32)});
    }
    std::printf("%s", t.render().c_str());

    // Count inversions: adjacent pairs where more DRAM latency
    // produced a *faster* run.
    std::size_t inversions = 0;
    double maxInversion = 0.0;
    for (std::size_t i = 1; i < cpt.size(); ++i) {
        if (cpt[i] < cpt[i - 1]) {
            ++inversions;
            maxInversion = std::max(
                maxInversion, 100.0 * (cpt[i - 1] / cpt[i] - 1.0));
        }
    }
    std::printf("\n%zu of %zu adjacent latency steps are inverted "
                "(slower DRAM looked faster); largest inversion "
                "%.1f%%\n",
                inversions, cpt.size() - 1, maxInversion);
    std::printf("range across all 11 runs: %.1f%% of the mean\n",
                s.rangeOfVariability());
    return 0;
}
