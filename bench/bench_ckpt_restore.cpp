/**
 * @file
 * Warm-up amortization benchmark: restoring a warm-up state from the
 * persistent checkpoint library versus re-simulating it from boot.
 *
 * The paper's methodology (Section 3.2.2) reuses each warmed state
 * for every perturbation seed; the library makes that reuse durable
 * across processes. This benchmark quantifies the payoff on a grid
 * of (system configuration x checkpoint position) cells and verifies
 * the contract behind it: the snapshot served from disk is bitwise
 * the one the warmer produced.
 *
 * Emits rows in the bench_sim_throughput JSON schema so
 * tools/perfcmp.py can compare two emissions; ticks/txns of a
 * "restore" row are the warm-equivalent work delivered (the same
 * simulated distance as its "rewarm" twin), so ticks_per_sec reads
 * as warm-up ticks delivered per host second in both modes.
 *
 * Exits nonzero if any cell's snapshot mismatches or if restoring
 * the whole grid is not faster than re-warming it.
 *
 * Usage:
 *   bench_ckpt_restore [--json FILE] [--repeat N] [--keep-dir DIR]
 *
 * The full grid runs in under a second, so VARSIM_QUICK does not
 * shrink it (shallow warm-ups are boot-dominated and say nothing
 * about restore vs re-warm); the flag is still recorded in the JSON
 * so perfcmp.py can warn on mixed comparisons.
 */

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/common.hh"
#include "ckpt/library.hh"

namespace
{

using namespace varsim;

struct Row
{
    std::string cell; ///< "OLTP/<config>@<position>"
    std::string mode; ///< "rewarm" or "restore"
    std::uint64_t simTicks;
    std::uint64_t txns;
    double wallSeconds;

    double ticksPerSec() const { return simTicks / wallSeconds; }
    double txnsPerSec() const { return txns / wallSeconds; }
};

struct ConfigCell
{
    const char *name;
    core::SystemConfig sys;
};

workload::WorkloadParams
benchWorkload()
{
    workload::WorkloadParams wl;
    wl.kind = workload::WorkloadKind::Oltp;
    wl.threadsPerCpu = 2;
    return wl;
}

void
emitJson(std::ostream &os, const std::vector<Row> &rows)
{
    os << "{\n  \"bench\": \"ckpt_restore\",\n"
       << "  \"quick\": " << (bench::quick() ? "true" : "false")
       << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"workload\": \"" << r.cell
           << "\", \"mode\": \"" << r.mode
           << "\", \"sim_ticks\": " << r.simTicks
           << ", \"txns\": " << r.txns
           << ", \"wall_seconds\": " << r.wallSeconds
           << ", \"ticks_per_sec\": " << r.ticksPerSec()
           << ", \"txns_per_sec\": " << r.txnsPerSec() << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    std::string keepDir;
    // Cells last milliseconds; best-of-3 is needed before a single
    // row's wall time means anything on a loaded host.
    int repeat = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--repeat") == 0 &&
                 i + 1 < argc)
            repeat = std::max(1, std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--keep-dir") == 0 &&
                 i + 1 < argc)
            keepDir = argv[++i];
    }

    // Experiment 1's associativity axis on the small test target:
    // distinct configurations have distinct library keys, so the
    // grid exercises content addressing, not just one object.
    ConfigCell configs[] = {
        {"a4", core::SystemConfig::testDefault()},
        {"a1", core::SystemConfig::testDefault()},
    };
    configs[1].sys.mem.l2Assoc = 1;

    // Positions deep enough that re-simulating the warm-up, not
    // booting the simulation, is the dominant cost of a cell. Not
    // scaled down in quick mode: shallower cells are boot-dominated
    // noise, and the full grid already finishes in under a second.
    const std::uint64_t positions[] = {100, 200, 400};
    const std::uint64_t warmupSeed = 7;

    const std::string dir =
        !keepDir.empty()
            ? keepDir
            : (std::filesystem::temp_directory_path() /
               "varsim_bench_ckpt_restore.ckpt")
                  .string();
    if (keepDir.empty())
        std::filesystem::remove_all(dir);
    auto lib = ckpt::CheckpointLibrary::open(dir);

    bench::banner(
        "bench_ckpt_restore",
        "warm-up restore-from-disk vs re-simulation",
        "Section 3.2.2 methodology: one warm-up, many perturbed "
        "measurement runs; the library amortizes the warm-up across "
        "processes");

    const auto wl = benchWorkload();
    std::vector<Row> rows;
    double rewarmWall = 0, restoreWall = 0;
    bool mismatch = false;

    for (const auto &cc : configs) {
        for (const std::uint64_t pos : positions) {
            const std::string cell =
                std::string("OLTP/") + cc.name + "@" +
                std::to_string(pos);

            // Re-warm: boot and simulate to the position, then
            // snapshot — the cost every process pays without the
            // library. Best-of-N wall time.
            double wall = 0;
            core::Checkpoint cp;
            std::uint64_t ticks = 0;
            for (int rep = 0; rep < repeat; ++rep) {
                bench::Stopwatch sw;
                core::Simulation simn(cc.sys, wl);
                simn.seedPerturbation(warmupSeed);
                simn.runTransactions(pos);
                cp = simn.checkpoint();
                const double w = sw.seconds();
                ticks = simn.now();
                if (rep == 0 || w < wall)
                    wall = w;
            }
            rows.push_back({cell, "rewarm", ticks, pos, wall});
            rewarmWall += wall;

            ckpt::CheckpointKey key;
            key.sys = cc.sys;
            key.wl = wl;
            key.warmupSeed = warmupSeed;
            key.position = pos;
            lib->publish(key, cp);

            // Restore: read + integrity-check the archive and
            // rebuild a live simulation from it.
            wall = 0;
            for (int rep = 0; rep < repeat; ++rep) {
                bench::Stopwatch sw;
                core::Checkpoint fetched;
                if (!lib->fetch(key, fetched)) {
                    std::fprintf(stderr,
                                 "FAIL: %s vanished from the "
                                 "library\n",
                                 cell.c_str());
                    return 1;
                }
                auto simn =
                    core::Simulation::restore(cc.sys, wl, fetched);
                const double w = sw.seconds();
                if (rep == 0 || w < wall)
                    wall = w;
                if (fetched.bytes != cp.bytes ||
                    simn->totalTxns() != pos) {
                    mismatch = true;
                    std::fprintf(stderr,
                                 "FAIL: %s restored snapshot is "
                                 "not bitwise the warmed one\n",
                                 cell.c_str());
                }
            }
            rows.push_back({cell, "restore", ticks, pos, wall});
            restoreWall += wall;

            const Row &w0 = rows[rows.size() - 2];
            const Row &r0 = rows.back();
            std::printf("%-14s rewarm %8.4fs  restore %8.4fs  "
                        "(%5.1fx)\n",
                        cell.c_str(), w0.wallSeconds,
                        r0.wallSeconds,
                        w0.wallSeconds / r0.wallSeconds);
        }
    }

    std::printf("total: rewarm %.4fs, restore %.4fs (%.1fx)\n",
                rewarmWall, restoreWall, rewarmWall / restoreWall);

    if (!jsonPath.empty()) {
        std::ofstream f(jsonPath);
        emitJson(f, rows);
        std::printf("wrote %s\n", jsonPath.c_str());
    } else {
        emitJson(std::cout, rows);
    }

    if (keepDir.empty())
        std::filesystem::remove_all(dir);
    if (mismatch)
        return 1;
    if (restoreWall >= rewarmWall) {
        std::fprintf(stderr,
                     "FAIL: restoring the grid (%.4fs) was not "
                     "faster than re-warming it (%.4fs)\n",
                     restoreWall, rewarmWall);
        return 1;
    }
    return 0;
}
