/**
 * @file
 * Ablation study for the OS-model design choices DESIGN.md calls
 * out. The paper attributes space variability to OS scheduling and
 * lock-acquisition order (Section 2.1); this bench quantifies how
 * much each scheduler mechanism contributes by toggling it:
 *
 *  - scheduling quantum (short / paper-scaled / long);
 *  - adaptive mutex spinning vs sleeping-only mutexes;
 *  - work stealing on idle CPUs.
 *
 * Expected: variability survives every ablation (it is inherent to
 * the workload), but throughput and the CoV magnitude shift — e.g.
 * sleeping-only mutexes convoy (lower throughput, fatter tails), and
 * very long quanta remove the quantum-race divergence mechanism.
 */

#include "bench/common.hh"

using namespace varsim;

namespace
{

struct Variant
{
    const char *name;
    sim::Tick quantum;
    sim::Tick spin;
    bool stealing;
};

} // anonymous namespace

int
main()
{
    bench::banner(
        "Scheduler ablation",
        "contribution of each OS mechanism to variability",
        "variability is inherent to the workload; scheduler "
        "mechanisms modulate its magnitude and the absolute "
        "throughput");

    const Variant variants[] = {
        {"baseline (20us quantum, adaptive, stealing)", 20'000,
         250, true},
        {"short quantum (5us)", 5'000, 250, true},
        {"long quantum (200us, few preemptions)", 200'000, 250,
         true},
        {"sleeping-only mutexes (no spin)", 20'000, 0, true},
        {"no work stealing", 20'000, 250, false},
    };

    const std::size_t numRuns = bench::scaleRuns(12);
    core::RunConfig rc;
    rc.warmupTxns = 100;
    rc.measureTxns = bench::scaleTxns(200);

    stats::Table t({"variant", "mean cpt", "CoV %", "range %",
                    "preempts/run", "blocks/run", "spins/run"});
    for (const Variant &v : variants) {
        core::SystemConfig sys = bench::paperSystem();
        sys.os.quantum = v.quantum;
        sys.os.spinRetryNs = v.spin;
        sys.os.workStealing = v.stealing;
        core::ExperimentConfig exp;
        exp.numRuns = numRuns;
        const auto results = core::runMany(
            sys, bench::oltpWorkload(), rc, exp);
        const auto rep = core::analyze(results);
        stats::RunningStat preempts, blocks, spins;
        for (const auto &r : results) {
            preempts.add(static_cast<double>(r.os.preemptions));
            blocks.add(static_cast<double>(r.os.contendedLocks));
            spins.add(static_cast<double>(r.os.lockSpins));
        }
        t.addRow({v.name, stats::fmtF(rep.summary.mean, 0),
                  stats::fmtF(rep.coefficientOfVariation, 2),
                  stats::fmtF(rep.rangeOfVariability, 2),
                  stats::fmtF(preempts.mean(), 0),
                  stats::fmtF(blocks.mean(), 0),
                  stats::fmtF(spins.mean(), 0)});
        std::fflush(stdout);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nreading guide: every variant keeps a nonzero "
                "CoV (the workload is inherently variable); "
                "sleeping-only mutexes trade spins for blocks and "
                "lose throughput; the long quantum removes most "
                "preemptions yet divergence persists through lock "
                "races\n");
    return 0;
}
