/**
 * @file
 * Figure 1: "Differences in OS-scheduled threads between two short
 * simulation runs."
 *
 * Two deterministic runs (no injected perturbation) start from
 * identical initial conditions and differ only in L2 associativity
 * (2-way vs 4-way, as in the paper). The OS schedules the same
 * threads for an identical prefix; once the first timing difference
 * reaches a scheduling decision, the executions diverge permanently.
 */

#include "bench/common.hh"

using namespace varsim;

namespace
{

std::vector<os::SchedEvent>
traceRun(std::size_t l2_assoc)
{
    core::SystemConfig sys = bench::paperSystem();
    sys.mem.l2Assoc = l2_assoc;
    sys.mem.perturbMaxNs = 0; // deterministic: the config IS the delta
    core::Simulation simn(sys, bench::oltpWorkload());
    simn.kernel().enableTrace(1u << 20);
    simn.runTransactions(bench::scaleTxns(400));
    return simn.kernel().traceEvents();
}

const char *
kindName(os::SchedEvent::Kind k)
{
    switch (k) {
      case os::SchedEvent::Kind::Dispatch: return "dispatch";
      case os::SchedEvent::Kind::Preempt:  return "preempt";
      case os::SchedEvent::Kind::Block:    return "block";
      case os::SchedEvent::Kind::Wakeup:   return "wakeup";
      case os::SchedEvent::Kind::Finish:   return "finish";
    }
    return "?";
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Figure 1", "OS scheduling divergence between two runs",
        "runs with 2-way vs 4-way L2 schedule the same threads "
        "until ~1,060,000 cycles, then diverge completely");

    const auto a = traceRun(2);
    const auto b = traceRun(4);

    // Longest common prefix of scheduling decisions
    // (cpu, thread, kind); timestamps may drift slightly first.
    std::size_t lcp = 0;
    const std::size_t n = std::min(a.size(), b.size());
    while (lcp < n && a[lcp].cpu == b[lcp].cpu &&
           a[lcp].thread == b[lcp].thread &&
           a[lcp].kind == b[lcp].kind) {
        ++lcp;
    }

    std::printf("scheduling events: run1 (2-way)=%zu, "
                "run2 (4-way)=%zu\n", a.size(), b.size());
    if (lcp == n) {
        std::printf("runs never diverged (increase run length)\n");
        return 0;
    }
    std::printf("identical scheduling prefix: %zu events\n", lcp);
    std::printf("divergence at tick %llu (run1) / %llu (run2)\n",
                static_cast<unsigned long long>(a[lcp].when),
                static_cast<unsigned long long>(b[lcp].when));

    std::printf("\nscheduling decisions around the divergence "
                "point:\n");
    std::printf("%-6s | %-28s | %-28s\n", "#",
                "run 1 (2-way L2)", "run 2 (4-way L2)");
    const std::size_t from = lcp >= 3 ? lcp - 3 : 0;
    for (std::size_t i = from; i < lcp + 9 && i < n; ++i) {
        char la[64], lb[64];
        std::snprintf(la, sizeof(la), "t%-3d %-8s cpu%-2d @%llu",
                      a[i].thread, kindName(a[i].kind), a[i].cpu,
                      static_cast<unsigned long long>(a[i].when));
        std::snprintf(lb, sizeof(lb), "t%-3d %-8s cpu%-2d @%llu",
                      b[i].thread, kindName(b[i].kind), b[i].cpu,
                      static_cast<unsigned long long>(b[i].when));
        std::printf("%-6zu | %-28s | %-28s%s\n", i, la, lb,
                    i == lcp ? "   <-- diverge" : "");
    }

    // After divergence, quantify how different the schedules are:
    // fraction of positions scheduling the same thread.
    std::size_t same = 0, cmp = 0;
    for (std::size_t i = lcp; i < n; ++i) {
        same += a[i].thread == b[i].thread;
        ++cmp;
    }
    std::printf("\nafter divergence, only %.1f%% of scheduling "
                "decisions pick the same thread (%zu compared)\n",
                cmp ? 100.0 * same / cmp : 0.0, cmp);
    return 0;
}
