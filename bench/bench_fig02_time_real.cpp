/**
 * @file
 * Figure 2: "OLTP time variability in a real system for different
 * observation intervals (one run)."
 *
 * The paper measured cycles per transaction on a Sun E5000 over
 * 1-second, 10-second and 60-second intervals of a single ten-minute
 * run, finding nearly a factor of three variation at small intervals
 * that flattens at 60 seconds. The "real machine" analog here is a
 * long simulated run with the perturbation always on; observation
 * intervals scale with the run (interval, 10x, 60x).
 */

#include "bench/common.hh"

using namespace varsim;

int
main()
{
    bench::banner(
        "Figure 2", "OLTP time variability vs observation interval",
        "cycles/txn varies ~3x between 1s intervals, less at 10s, "
        "nearly flat at 60s");

    core::SystemConfig sys = bench::paperSystem();
    core::Simulation simn(sys, bench::oltpWorkload());
    simn.seedPerturbation(2026);
    simn.recordCompletions(true);

    const std::uint64_t total = bench::scaleTxns(6000);
    simn.runTransactions(200); // warm up
    const sim::Tick start = simn.now();
    const std::size_t skip = simn.completions().size();
    simn.runTransactions(total);
    const sim::Tick elapsed = simn.now() - start;

    const auto &recs = simn.completions();
    const double ncpus = static_cast<double>(sys.numCpus());

    // Interval sizes in simulated time: base = elapsed/120 so the
    // base series has ~120 points, then 10x and 60x (mirroring the
    // paper's 1s : 10s : 60s ratio over a 600s run).
    for (const std::uint64_t mult : {1ull, 10ull, 60ull}) {
        const sim::Tick interval = (elapsed / 120) * mult;
        stats::RunningStat perInterval;
        std::vector<double> series;
        sim::Tick winStart = start;
        std::uint64_t count = 0;
        for (std::size_t i = skip; i < recs.size(); ++i) {
            while (recs[i].when >= winStart + interval) {
                if (count > 0) {
                    series.push_back(
                        static_cast<double>(interval) * ncpus /
                        static_cast<double>(count));
                }
                winStart += interval;
                count = 0;
            }
            ++count;
        }
        for (double v : series)
            perInterval.add(v);

        std::printf("\ninterval = %4llux base (%llu ns): "
                    "%zu intervals, cycles/txn min=%.0f avg=%.0f "
                    "max=%.0f  max/min=%.2f\n",
                    static_cast<unsigned long long>(mult),
                    static_cast<unsigned long long>(interval),
                    series.size(), perInterval.min(),
                    perInterval.mean(), perInterval.max(),
                    perInterval.min() > 0
                        ? perInterval.max() / perInterval.min()
                        : 0.0);
        // Print the series as a compact sparkline-style table.
        if (mult == 1) {
            std::printf("  series (every 8th interval): ");
            for (std::size_t i = 0; i < series.size(); i += 8)
                std::printf("%.0fk ", series[i] / 1000.0);
            std::printf("\n");
        }
    }

    std::printf("\nexpected shape: the max/min ratio shrinks "
                "monotonically as the interval grows\n");
    return 0;
}
