/**
 * @file
 * Compacted binary segment tests: format round-trips, damage
 * rejection sweeps, and the compaction-is-a-no-op contract — a
 * compacted store must replay to byte-identical reports and
 * bit-identical resume decisions versus its pure-JSONL twin, survive
 * kill -9 mid-compaction, and stay readable under a live writer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "campaign/campaign.hh"
#include "campaign/segment.hh"
#include "core/varsim.hh"

namespace
{

using namespace varsim;
using namespace varsim::campaign;

std::string
freshDir(const std::string &name)
{
    const auto p = std::filesystem::temp_directory_path() /
                   ("varsim_test_segment_" + name + ".camp");
    std::filesystem::remove_all(p);
    return p.string();
}

StoreHeader
twoGroupHeader()
{
    StoreHeader h;
    h.fingerprint = 0xfeedfaceull;
    h.numGroups = 2;
    h.workload = "OLTP";
    h.configNames = {"a", "b"};
    return h;
}

/** Deterministic record with awkward doubles and a metrics dump. */
RunRecord
record(std::size_t group, std::size_t run)
{
    RunRecord r;
    r.group = group;
    r.configIdx = group;
    r.runIdx = run;
    r.seed = 1000 + group * 100 + run;
    r.cyclesPerTxn = 20.0 + group + run / 3.0;
    r.runtimeTicks = 7000 + run;
    r.txns = 40 + run;
    r.metrics = {{"system.kernel.dispatches",
                  40.0 + group + run},
                 {"system.mem.bus.l2_misses",
                  3000.0 + run * (1.0 / 7.0)}};
    return r;
}

std::vector<RunRecord>
sampleRecords()
{
    std::vector<RunRecord> rs;
    for (std::size_t g = 0; g < 2; ++g)
        for (std::size_t i = 0; i < 4; ++i)
            rs.push_back(record(g, i));
    return rs;
}

std::map<std::size_t, GroupSummary>
summariesOf(const std::vector<RunRecord> &rs)
{
    std::map<std::size_t, GroupSummary> sums;
    for (const RunRecord &r : rs)
        sums[r.group].fold(r.cyclesPerTxn);
    return sums;
}

TEST(SegmentFormat, RoundTripAndLookup)
{
    const auto rs = sampleRecords();
    const auto sums = summariesOf(rs);
    const auto bytes = buildSegment(rs, sums);

    const SegmentLoad l = parseSegment(bytes);
    ASSERT_TRUE(l.ok) << l.error;
    const SegmentView &v = *l.view;
    EXPECT_EQ(v.runCount(), rs.size());
    EXPECT_EQ(v.runsInGroup(0), 4u);
    EXPECT_EQ(v.runsInGroup(1), 4u);
    EXPECT_EQ(v.runsInGroup(7), 0u);
    EXPECT_FALSE(v.find(0, 4).valid());
    EXPECT_FALSE(v.find(2, 0).valid());

    for (const RunRecord &want : rs) {
        const auto ref = v.find(want.group, want.runIdx);
        ASSERT_TRUE(ref.valid());
        EXPECT_EQ(v.cyclesPerTxn(ref), want.cyclesPerTxn)
            << "metric doubles must round-trip bit-exactly";
        EXPECT_EQ(v.runtimeTicks(ref), want.runtimeTicks);
        EXPECT_EQ(v.txns(ref), want.txns);

        const RunRecord got = v.materialize(ref);
        EXPECT_EQ(got.configIdx, want.configIdx);
        EXPECT_EQ(got.seed, want.seed);
        ASSERT_EQ(got.metrics.size(), want.metrics.size());
        for (const auto &kv : want.metrics) {
            const int idx = v.dictIndex(kv.first);
            ASSERT_GE(idx, 0) << kv.first;
            double value = 0.0;
            ASSERT_TRUE(v.metricValue(
                ref, static_cast<std::uint32_t>(idx), &value));
            EXPECT_EQ(value, kv.second) << kv.first;
        }
    }
    EXPECT_EQ(v.dictIndex("no.such.metric"), -1);

    // The summary footer snapshot survives bit-for-bit.
    ASSERT_EQ(v.summaries().size(), sums.size());
    for (const auto &[g, s] : sums) {
        const auto it = v.summaries().find(g);
        ASSERT_NE(it, v.summaries().end());
        EXPECT_EQ(it->second.count, s.count);
        EXPECT_EQ(it->second.mean, s.mean);
        EXPECT_EQ(it->second.m2, s.m2);
        EXPECT_EQ(it->second.minValue, s.minValue);
        EXPECT_EQ(it->second.maxValue, s.maxValue);
    }
}

TEST(SegmentFormat, EmptySegmentParses)
{
    const auto bytes = buildSegment({}, {});
    const SegmentLoad l = parseSegment(bytes);
    ASSERT_TRUE(l.ok) << l.error;
    EXPECT_EQ(l.view->runCount(), 0u);
    EXPECT_TRUE(l.view->dictionary().empty());
}

TEST(SegmentFormat, TruncationSweepRejectsEveryPrefix)
{
    const auto bytes =
        buildSegment(sampleRecords(), summariesOf(sampleRecords()));
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        const SegmentLoad l = parseSegment(std::vector<std::uint8_t>(
            bytes.begin(), bytes.begin() + n));
        EXPECT_FALSE(l.ok)
            << "a " << n << "-byte prefix of a " << bytes.size()
            << "-byte segment parsed as valid";
        EXPECT_FALSE(l.error.empty());
    }
}

TEST(SegmentFormat, BitFlipSweepRejectsEveryFlip)
{
    const auto bytes =
        buildSegment(sampleRecords(), summariesOf(sampleRecords()));
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        auto damaged = bytes;
        damaged[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
        const SegmentLoad l = parseSegment(std::move(damaged));
        EXPECT_FALSE(l.ok)
            << "flipping bit " << (i % 8) << " of byte " << i
            << " went undetected";
    }
}

TEST(StoreCompaction, CompactReopenPreservesEverything)
{
    const std::string dir = freshDir("preserve");
    auto store = ResultStore::openOrCreate(dir, twoGroupHeader());
    // Out-of-order appends: the canonical summary fold must not
    // depend on arrival order.
    for (std::size_t i : {1u, 0u, 3u, 2u})
        for (std::size_t g = 0; g < 2; ++g)
            store->appendRun(record(g, i));
    PlanRecord plan;
    plan.runLength = 2000;
    plan.numRuns = 12;
    store->appendPlan(plan);

    const auto metric0 = store->groupMetric(0);
    const auto metric1 = store->groupMetric(1);
    const auto misses =
        store->groupMetricNamed(0, "system.mem.bus.l2_misses");
    const auto names = store->metricNames();
    const GroupSummary sum0 = store->groupSummary(0);
    ASSERT_EQ(sum0.count, 4u);

    const auto res = store->compact();
    EXPECT_TRUE(res.performed);
    EXPECT_EQ(res.runs, 8u);
    EXPECT_EQ(store->segmentCount(), 1u);
    EXPECT_EQ(store->segmentRunCount(), 8u);
    EXPECT_EQ(store->tailRunCount(), 0u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/" +
                                        res.segmentFile));

    // In-memory view unchanged by the swap.
    EXPECT_EQ(store->groupMetric(0), metric0);
    EXPECT_EQ(store->groupMetric(1), metric1);
    EXPECT_EQ(
        store->groupMetricNamed(0, "system.mem.bus.l2_misses"),
        misses);
    EXPECT_EQ(store->metricNames(), names);
    EXPECT_EQ(store->groupSummary(0).mean, sum0.mean);
    EXPECT_EQ(store->groupSummary(0).m2, sum0.m2);

    // A second compaction with nothing new is a no-op.
    EXPECT_FALSE(store->compact().performed);

    // The tail keeps working after compaction, and a reopen replays
    // segment + tail to the same state.
    store->appendRun(record(0, 4));
    EXPECT_EQ(store->tailRunCount(), 1u);
    store.reset();

    auto reopened = ResultStore::open(dir);
    EXPECT_EQ(reopened->header().version, 2);
    EXPECT_EQ(reopened->totalRuns(), 9u);
    EXPECT_EQ(reopened->segmentRunCount(), 8u);
    EXPECT_EQ(reopened->tailRunCount(), 1u);
    auto withTail = metric0;
    withTail.push_back(record(0, 4).cyclesPerTxn);
    EXPECT_EQ(reopened->groupMetric(0), withTail);
    EXPECT_EQ(reopened->groupMetric(1), metric1);
    EXPECT_EQ(
        reopened->groupMetricNamed(0, "system.mem.bus.l2_misses")
            .size(),
        5u);
    EXPECT_EQ(reopened->prefixLength(0), 5u);
    EXPECT_EQ(reopened->groupSummary(0).count, 5u);
    EXPECT_TRUE(reopened->plan().valid);
    EXPECT_EQ(reopened->plan().numRuns, 12u);
}

TEST(StoreCompaction, ReportByteIdenticalToJsonlTwin)
{
    // The acceptance contract: a compacted store and its pure-JSONL
    // twin produce byte-identical reports.
    const std::string plain = freshDir("twin_plain");
    const std::string compacted = freshDir("twin_compact");
    for (const std::string &dir : {plain, compacted}) {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        for (std::size_t i : {2u, 0u, 1u, 4u, 3u, 5u})
            for (std::size_t g = 0; g < 2; ++g)
                store->appendRun(record(g, i));
    }
    ASSERT_TRUE(ResultStore::open(compacted)->compact().performed);

    EXPECT_EQ(campaignReport(plain).text,
              campaignReport(compacted).text);
    EXPECT_EQ(
        campaignMetricReport(plain, "system.mem.bus.l2_misses")
            .text,
        campaignMetricReport(compacted, "system.mem.bus.l2_misses")
            .text);
    EXPECT_EQ(campaignMetricReport(plain, "list").text,
              campaignMetricReport(compacted, "list").text);
}

TEST(StoreCompaction, ResumeDecisionsBitIdentical)
{
    // Resume decisions are a pure function of the replayed metric
    // prefixes, so bit-identical prefixes mean bit-identical
    // decisions. Check both halves: compacted twin == JSONL twin,
    // and the pilot-capped controller inputs == the full ones.
    const std::string plain = freshDir("dec_plain");
    const std::string compacted = freshDir("dec_compact");
    for (const std::string &dir : {plain, compacted}) {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        for (std::size_t g = 0; g < 2; ++g)
            for (std::size_t i = 0; i < 9; ++i)
                store->appendRun(record(g, i));
    }
    ASSERT_TRUE(ResultStore::open(compacted)->compact().performed);

    CampaignSpec spec;
    const auto sys = core::SystemConfig::testDefault();
    spec.configs = {{"a", sys}, {"b", sys}};
    spec.stop.fixedRuns = 0;
    spec.stop.pilotRuns = 4;
    spec.stop.maxRuns = 20;
    spec.stop.relativeError = 0.02;

    auto a = ResultStore::openReadOnly(plain);
    auto b = ResultStore::openReadOnly(compacted);
    std::vector<std::vector<double>> full, capped, fromSegments;
    for (std::size_t g = 0; g < 2; ++g) {
        full.push_back(a->groupMetric(g));
        capped.push_back(a->groupMetric(g, spec.stop.pilotRuns));
        fromSegments.push_back(
            b->groupMetric(g, spec.stop.pilotRuns));
        EXPECT_EQ(a->groupMetric(g), b->groupMetric(g));
    }
    EXPECT_EQ(capped, fromSegments);

    const auto dFull = decideTargets(spec, full);
    const auto dCapped = decideTargets(spec, capped);
    const auto dSegment = decideTargets(spec, fromSegments);
    ASSERT_EQ(dFull.size(), dCapped.size());
    for (std::size_t g = 0; g < dFull.size(); ++g) {
        EXPECT_EQ(dFull[g].target, dCapped[g].target);
        EXPECT_EQ(dFull[g].reason, dCapped[g].reason);
        EXPECT_EQ(dFull[g].covPercent, dCapped[g].covPercent);
        EXPECT_EQ(dCapped[g].target, dSegment[g].target);
        EXPECT_EQ(dCapped[g].reason, dSegment[g].reason);
    }
}

TEST(StoreCompaction, CompactedCampaignResumesBitIdentical)
{
    // End to end: kill a real campaign, compact the survivor, and
    // the resumed statistics must still match the uninterrupted
    // twin bit for bit.
    campaign::CampaignSpec spec;
    core::SystemConfig sysA = core::SystemConfig::testDefault();
    sysA.mem.perturbMaxNs = 4;
    core::SystemConfig sysB = sysA;
    sysB.mem.l2Assoc *= 2;
    spec.configs = {{"assoc-lo", sysA}, {"assoc-hi", sysB}};
    spec.wl.kind = workload::WorkloadKind::Oltp;
    spec.wl.threadsPerCpu = 2;
    spec.run.warmupTxns = 5;
    spec.run.measureTxns = 20;
    spec.baseSeed = 11;
    spec.stop.fixedRuns = 4;

    const std::string whole = freshDir("resume_whole");
    const std::string killed = freshDir("resume_killed");
    campaign::runCampaign(spec, whole);

    campaign::CampaignOptions opt;
    opt.interruptAfter = 3;
    const auto first = campaign::runCampaign(spec, killed, opt);
    ASSERT_TRUE(first.interrupted);
    ASSERT_TRUE(
        ResultStore::open(killed)->compact().performed);

    const auto second = campaign::runCampaign(spec, killed);
    EXPECT_TRUE(second.complete);

    auto a = ResultStore::openReadOnly(whole);
    auto b = ResultStore::openReadOnly(killed);
    ASSERT_EQ(a->totalRuns(), b->totalRuns());
    for (std::size_t g = 0; g < spec.numGroups(); ++g)
        EXPECT_EQ(a->groupMetric(g), b->groupMetric(g))
            << "group " << g;
    EXPECT_EQ(campaignReport(whole).text,
              campaignReport(killed).text);
}

TEST(StoreCompaction, AutoCompactsPastTailThreshold)
{
    ::setenv("VARSIM_STORE_COMPACT_TAIL", "8", 1);
    const std::string dir = freshDir("autocompact");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        for (std::size_t i = 0; i < 5; ++i)
            store->appendRun(record(0, i));
        EXPECT_EQ(store->segmentCount(), 0u);
        for (std::size_t i = 0; i < 5; ++i)
            store->appendRun(record(1, i));
        // The tail crossed 8 runs mid-loop: compacted automatically.
        EXPECT_EQ(store->segmentCount(), 1u);
        EXPECT_LT(store->tailRunCount(), 8u);
        EXPECT_EQ(store->totalRuns(), 10u);
    }
    ::unsetenv("VARSIM_STORE_COMPACT_TAIL");

    auto store = ResultStore::openReadOnly(dir);
    EXPECT_EQ(store->totalRuns(), 10u);
    ASSERT_EQ(store->groupMetric(0).size(), 5u);
    EXPECT_EQ(store->groupMetric(0)[3], record(0, 3).cyclesPerTxn);
}

TEST(StoreCompaction, ExportRoundTripsThroughAFreshStore)
{
    const std::string dir = freshDir("export_src");
    const std::string copy = freshDir("export_copy");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        for (std::size_t g = 0; g < 2; ++g)
            for (std::size_t i = 0; i < 3; ++i)
                store->appendRun(record(g, i));
        PlanRecord plan;
        plan.runLength = 2000;
        plan.numRuns = 12;
        store->appendPlan(plan);
        ASSERT_TRUE(store->compact().performed);
    }

    // Export the compacted store as pure JSONL and replay it cold.
    auto src = ResultStore::openReadOnly(dir);
    std::ostringstream jsonl;
    src->exportJsonl(jsonl);
    std::filesystem::create_directories(copy);
    {
        std::ofstream f(copy + "/manifest.jsonl",
                        std::ios::binary);
        f << jsonl.str();
    }
    auto dst = ResultStore::openReadOnly(copy);
    EXPECT_EQ(dst->header().version, 1);
    EXPECT_EQ(dst->header().fingerprint,
              src->header().fingerprint);
    EXPECT_EQ(dst->totalRuns(), src->totalRuns());
    EXPECT_TRUE(dst->plan().valid);
    for (std::size_t g = 0; g < 2; ++g) {
        EXPECT_EQ(dst->groupMetric(g), src->groupMetric(g));
        EXPECT_EQ(
            dst->groupMetricNamed(g, "system.mem.bus.l2_misses"),
            src->groupMetricNamed(g, "system.mem.bus.l2_misses"));
    }
    EXPECT_EQ(campaignReport(copy).text, campaignReport(dir).text);
}

TEST(StoreCompaction, LiveReaderNeverSeesATornStore)
{
    // Readers race a writer that appends and periodically compacts.
    // Every replayed prefix must be consistent: the expected values
    // for however many runs the reader happened to observe.
    const std::string dir = freshDir("liveread");
    {
        ResultStore::openOrCreate(dir, twoGroupHeader());
    }
    std::atomic<bool> done{false};
    std::thread writer([&] {
        auto store = ResultStore::open(dir);
        for (std::size_t i = 0; i < 40; ++i) {
            store->appendRun(record(0, i));
            if (i % 10 == 9)
                store->compact();
        }
        done.store(true);
    });
    std::size_t observations = 0;
    while (!done.load()) {
        auto reader = ResultStore::openReadOnly(dir);
        const auto xs = reader->groupMetric(0);
        for (std::size_t i = 0; i < xs.size(); ++i)
            ASSERT_EQ(xs[i], record(0, i).cyclesPerTxn)
                << "reader saw a corrupt prefix at run " << i;
        ASSERT_EQ(reader->prefixLength(0), xs.size());
        ++observations;
    }
    writer.join();
    EXPECT_GT(observations, 0u);

    auto reader = ResultStore::openReadOnly(dir);
    EXPECT_EQ(reader->totalRuns(), 40u);
    EXPECT_EQ(reader->groupMetric(0).size(), 40u);
}

TEST(StoreCompactionDeathTest, KillNineDuringCompactionLeavesStoreIntact)
{
    const std::string dir = freshDir("kill9");
    auto store = ResultStore::openOrCreate(dir, twoGroupHeader());
    for (std::size_t g = 0; g < 2; ++g)
        for (std::size_t i = 0; i < 3; ++i)
            store->appendRun(record(g, i));
    const std::string before = campaignReport(dir).text;

    // Die after the segment file lands but before the manifest
    // references it — the window a kill -9 would hit.
    EXPECT_EXIT(
        {
            ::setenv("VARSIM_STORE_CRASH_COMPACT", "1", 1);
            store->compact();
        },
        testing::ExitedWithCode(137), "");

    // The parent's store never compacted; the old manifest is still
    // authoritative and the orphan segment is ignored.
    store.reset();
    auto reopened = ResultStore::open(dir);
    EXPECT_EQ(reopened->totalRuns(), 6u);
    EXPECT_EQ(reopened->segmentCount(), 0u);
    EXPECT_EQ(campaignReport(dir).text, before);

    // The next compaction atomically overwrites the orphan and
    // completes; the report still doesn't change.
    const auto res = reopened->compact();
    EXPECT_TRUE(res.performed);
    EXPECT_EQ(res.runs, 6u);
    EXPECT_EQ(campaignReport(dir).text, before);
}

} // namespace
