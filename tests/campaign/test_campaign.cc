/**
 * @file
 * End-to-end campaign-engine tests: the kill-and-resume contract
 * (bit-identical statistics), shard partitioning, idempotent reruns,
 * adaptive stopping below the fixed-K baseline, and checkpointed
 * campaigns resuming onto identical warmed state.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "campaign/campaign.hh"
#include "core/varsim.hh"

namespace
{

using namespace varsim;

std::string
freshDir(const std::string &name)
{
    const auto p = std::filesystem::temp_directory_path() /
                   ("varsim_test_campaign_" + name + ".camp");
    std::filesystem::remove_all(p);
    return p.string();
}

/** A two-configuration spec small enough for unit-test budgets. */
campaign::CampaignSpec
smallSpec()
{
    campaign::CampaignSpec spec;
    core::SystemConfig sysA = core::SystemConfig::testDefault();
    sysA.mem.perturbMaxNs = 4;
    core::SystemConfig sysB = sysA;
    sysB.mem.l2Assoc *= 2;
    spec.configs = {{"assoc-lo", sysA}, {"assoc-hi", sysB}};
    spec.wl.kind = workload::WorkloadKind::Oltp;
    spec.wl.threadsPerCpu = 2;
    spec.run.warmupTxns = 5;
    spec.run.measureTxns = 20;
    spec.baseSeed = 11;
    spec.stop.fixedRuns = 4;
    return spec;
}

std::vector<std::vector<double>>
allMetrics(const std::string &dir,
           const campaign::CampaignSpec &spec)
{
    auto store = campaign::ResultStore::open(dir);
    std::vector<std::vector<double>> out;
    for (std::size_t g = 0; g < spec.numGroups(); ++g)
        out.push_back(store->groupMetric(g));
    return out;
}

TEST(Campaign, RunsToCompletionAndMatchesDirectRuns)
{
    const auto spec = smallSpec();
    const std::string dir = freshDir("direct");
    const auto outcome = campaign::runCampaign(spec, dir);
    EXPECT_TRUE(outcome.complete);
    EXPECT_FALSE(outcome.interrupted);
    EXPECT_EQ(outcome.runsExecuted, 8u);
    EXPECT_EQ(outcome.runsRecorded, 8u);

    // Every stored metric must equal a direct runOnce() with the
    // same (config, seed): storage adds nothing and loses nothing.
    const auto metrics = allMetrics(dir, spec);
    for (std::size_t g = 0; g < spec.numGroups(); ++g) {
        ASSERT_EQ(metrics[g].size(), 4u);
        for (std::size_t i = 0; i < 4; ++i) {
            core::RunConfig rc = spec.run;
            rc.perturbSeed = spec.groupSeed(g, i);
            const auto res = core::runOnce(
                spec.configs[spec.configOf(g)].sys, spec.wl, rc);
            EXPECT_EQ(metrics[g][i], res.cyclesPerTxn)
                << "group " << g << " run " << i;
        }
    }
}

TEST(Campaign, ResumeAfterKillIsBitIdentical)
{
    const auto spec = smallSpec();

    const std::string uninterrupted = freshDir("uninterrupted");
    campaign::runCampaign(spec, uninterrupted);

    // "Kill" the first invocation after 3 durable records; resume.
    const std::string killed = freshDir("killed");
    campaign::CampaignOptions opt;
    opt.hostThreads = 1;
    opt.interruptAfter = 3;
    const auto first = campaign::runCampaign(spec, killed, opt);
    EXPECT_TRUE(first.interrupted);
    EXPECT_FALSE(first.complete);
    EXPECT_EQ(first.runsExecuted, 3u);

    const auto second = campaign::runCampaign(spec, killed);
    EXPECT_TRUE(second.complete);
    EXPECT_FALSE(second.interrupted);
    EXPECT_EQ(second.runsExecuted, 5u) << "resume repeated work";

    // The whole point: statistics after kill+resume are bitwise
    // equal to an uninterrupted campaign's.
    const auto a = allMetrics(uninterrupted, spec);
    const auto b = allMetrics(killed, spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t g = 0; g < a.size(); ++g) {
        ASSERT_EQ(a[g].size(), b[g].size()) << "group " << g;
        for (std::size_t i = 0; i < a[g].size(); ++i)
            EXPECT_EQ(a[g][i], b[g][i])
                << "group " << g << " run " << i;
    }
    EXPECT_EQ(campaign::campaignReport(uninterrupted).text,
              campaign::campaignReport(killed).text);
}

TEST(Campaign, RerunOfCompleteCampaignIsNoOp)
{
    const auto spec = smallSpec();
    const std::string dir = freshDir("noop");
    campaign::runCampaign(spec, dir);
    const auto again = campaign::runCampaign(spec, dir);
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(again.runsExecuted, 0u);
    EXPECT_EQ(again.runsRecorded, 8u);
}

TEST(Campaign, ShardsPartitionWithoutOverlap)
{
    const auto spec = smallSpec();
    const std::string sharded = freshDir("sharded");

    campaign::CampaignOptions shard0;
    shard0.shardIndex = 0;
    shard0.shardCount = 2;
    const auto first = campaign::runCampaign(spec, sharded, shard0);
    EXPECT_FALSE(first.complete)
        << "one shard cannot complete a two-shard campaign";
    EXPECT_GT(first.runsExecuted, 0u);
    EXPECT_LT(first.runsExecuted, 8u);

    campaign::CampaignOptions shard1;
    shard1.shardIndex = 1;
    shard1.shardCount = 2;
    const auto second =
        campaign::runCampaign(spec, sharded, shard1);
    EXPECT_TRUE(second.complete);
    EXPECT_EQ(first.runsExecuted + second.runsExecuted, 8u)
        << "shards overlapped or left holes";

    // Sharded execution changes nothing about the results.
    const std::string whole = freshDir("whole");
    campaign::runCampaign(spec, whole);
    EXPECT_EQ(allMetrics(sharded, spec), allMetrics(whole, spec));
}

TEST(Campaign, AdaptiveStopsBelowFixedBaseline)
{
    campaign::CampaignSpec spec = smallSpec();
    spec.stop.fixedRuns = 0; // adaptive
    spec.stop.pilotRuns = 4;
    spec.stop.maxRuns = 20;
    spec.stop.relativeError = 0.25; // generous: pilot should do
    const std::string dir = freshDir("adaptive");
    const auto outcome = campaign::runCampaign(spec, dir);
    EXPECT_TRUE(outcome.complete);
    const std::size_t fixedBaseline = 20 * spec.numGroups();
    EXPECT_LT(outcome.runsRecorded, fixedBaseline);
    for (std::size_t g = 0; g < spec.numGroups(); ++g) {
        EXPECT_GE(outcome.recordedRuns[g], spec.stop.pilotRuns);
        EXPECT_LE(outcome.recordedRuns[g], spec.stop.maxRuns);
    }
}

TEST(Campaign, CheckpointedCampaignResumesBitIdentical)
{
    campaign::CampaignSpec spec = smallSpec();
    spec.stop.fixedRuns = 3;
    spec.numCheckpoints = 2;
    spec.checkpointStep = 15;
    ASSERT_EQ(spec.numGroups(), 4u); // 2 configs x 2 checkpoints

    const std::string uninterrupted = freshDir("ckpt-full");
    campaign::runCampaign(spec, uninterrupted);

    const std::string killed = freshDir("ckpt-killed");
    campaign::CampaignOptions opt;
    opt.hostThreads = 1;
    opt.interruptAfter = 5;
    campaign::runCampaign(spec, killed, opt);
    const auto resumed = campaign::runCampaign(spec, killed);
    EXPECT_TRUE(resumed.complete);

    // Checkpoints are re-derived, not persisted: identical warmed
    // state must produce identical metrics across the kill.
    EXPECT_EQ(allMetrics(uninterrupted, spec),
              allMetrics(killed, spec));
}

TEST(Campaign, MetricReportCoversRegistryMetrics)
{
    const auto spec = smallSpec();
    const std::string dir = freshDir("metric-report");
    campaign::runCampaign(spec, dir);

    // Every run recorded its registry dump; the per-metric report
    // must find a registry metric by name and cover both groups.
    const auto rep = campaign::campaignMetricReport(
        dir, "system.mem.bus.l2_misses");
    EXPECT_NE(rep.text.find("system.mem.bus.l2_misses"),
              std::string::npos);
    EXPECT_NE(rep.text.find("assoc-lo"), std::string::npos);
    EXPECT_NE(rep.text.find("assoc-hi"), std::string::npos);
    EXPECT_NE(rep.text.find("n=4"), std::string::npos);
    EXPECT_NE(rep.text.find("CI for the mean"), std::string::npos);

    // Built-in metrics work without the dump.
    const auto builtin =
        campaign::campaignMetricReport(dir, "runtime_ticks");
    EXPECT_NE(builtin.text.find("n=4"), std::string::npos);

    // "list" enumerates what was recorded.
    const auto list = campaign::campaignMetricReport(dir, "list");
    EXPECT_NE(list.text.find("cycles_per_txn"), std::string::npos);
    EXPECT_NE(list.text.find("system.kernel.dispatches"),
              std::string::npos);

    // The report agrees with recomputing from the store directly.
    auto store = campaign::ResultStore::open(dir);
    const auto xs =
        store->groupMetricNamed(0, "system.mem.bus.l2_misses");
    ASSERT_EQ(xs.size(), 4u);
    EXPECT_NE(rep.text.find(core::analyze(xs).toString()),
              std::string::npos);
}

TEST(Campaign, StatusReflectsTheStore)
{
    const auto spec = smallSpec();
    const std::string dir = freshDir("status");
    campaign::runCampaign(spec, dir);
    const auto st = campaign::campaignStatus(dir);
    EXPECT_EQ(st.totalRuns, 8u);
    ASSERT_EQ(st.runsPerGroup.size(), 2u);
    EXPECT_EQ(st.runsPerGroup[0], 4u);
    EXPECT_EQ(st.runsPerGroup[1], 4u);
    ASSERT_EQ(st.groupNames.size(), 2u);
    EXPECT_EQ(st.groupNames[0], "assoc-lo");
    EXPECT_NE(st.header.fingerprint, 0u);
}

TEST(CampaignDeathTest, ResumeUnderDifferentSpecIsFatal)
{
    const auto spec = smallSpec();
    const std::string dir = freshDir("respec");
    campaign::runCampaign(spec, dir);
    campaign::CampaignSpec other = spec;
    other.baseSeed = 999; // different seed space, same store
    EXPECT_DEATH(campaign::runCampaign(other, dir), "fingerprint");
}

TEST(CampaignDeathTest, ZeroRunStoppingRuleIsFatal)
{
    campaign::CampaignSpec spec = smallSpec();
    spec.stop.fixedRuns = 0;
    spec.stop.pilotRuns = 0; // no pilot, no fixed K: nonsense
    EXPECT_DEATH(
        campaign::runCampaign(spec, freshDir("zerorule")), "");
}

} // namespace
