/**
 * @file
 * Durability tests of the campaign result store: exact record
 * round-trips, torn-tail crash recovery, duplicate suppression, and
 * the contiguous-prefix contract behind resume determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "campaign/campaign.hh"
#include "campaign/store.hh"

namespace
{

using namespace varsim::campaign;

std::string
freshDir(const std::string &name)
{
    const auto p = std::filesystem::temp_directory_path() /
                   ("varsim_test_store_" + name + ".camp");
    std::filesystem::remove_all(p);
    return p.string();
}

StoreHeader
twoGroupHeader()
{
    StoreHeader h;
    h.fingerprint = 0xfeedfaceull;
    h.numGroups = 2;
    h.workload = "OLTP";
    h.configNames = {"a", "b"};
    return h;
}

RunRecord
record(std::size_t group, std::size_t run, double metric)
{
    RunRecord r;
    r.group = group;
    r.configIdx = group;
    r.runIdx = run;
    r.seed = 1000 + group * 100 + run;
    r.cyclesPerTxn = metric;
    r.runtimeTicks = 7777 + run;
    r.txns = 40;
    return r;
}

TEST(ResultStore, RoundTripsRecordsExactly)
{
    const std::string dir = freshDir("roundtrip");
    // Metrics chosen so sloppy formatting would lose bits.
    const double awkward[] = {1.0 / 3.0, 26809.123456789012,
                              1e-17 + 2.0};
    {
        auto store = ResultStore::openOrCreate(dir,
                                               twoGroupHeader());
        for (int i = 0; i < 3; ++i)
            store->appendRun(record(0, i, awkward[i]));
        store->appendRun(record(1, 0, 4.25));
    }
    auto store = ResultStore::open(dir);
    EXPECT_EQ(store->header().fingerprint, 0xfeedfaceull);
    EXPECT_EQ(store->header().numGroups, 2u);
    EXPECT_EQ(store->header().workload, "OLTP");
    ASSERT_EQ(store->header().configNames.size(), 2u);
    EXPECT_EQ(store->header().configNames[1], "b");
    EXPECT_EQ(store->totalRuns(), 4u);

    const auto xs = store->groupMetric(0);
    ASSERT_EQ(xs.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(xs[i], awkward[i]) << "double round-trip lost "
                                        "bits at index " << i;
    const auto recs = store->groupRuns(0);
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[2].seed, 1002u);
    EXPECT_EQ(recs[2].runtimeTicks, 7779u);
    EXPECT_EQ(recs[2].txns, 40u);
}

TEST(ResultStore, GroupMetricReturnsContiguousPrefixOnly)
{
    const std::string dir = freshDir("prefix");
    auto store = ResultStore::openOrCreate(dir, twoGroupHeader());
    store->appendRun(record(0, 0, 1.0));
    store->appendRun(record(0, 1, 2.0));
    store->appendRun(record(0, 3, 4.0)); // gap at run 2

    EXPECT_EQ(store->runsInGroup(0), 3u);
    EXPECT_TRUE(store->hasRun(0, 3));
    EXPECT_FALSE(store->hasRun(0, 2));
    // The prefix stops at the gap: statistics never see run 3 until
    // run 2 exists, so every reader agrees on the sample.
    EXPECT_EQ(store->groupMetric(0),
              (std::vector<double>{1.0, 2.0}));
}

TEST(ResultStore, DuplicateAppendKeepsFirstRecord)
{
    const std::string dir = freshDir("dup");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        store->appendRun(record(0, 0, 10.0));
        store->appendRun(record(0, 0, 99.0)); // racing shard
    }
    auto store = ResultStore::open(dir);
    EXPECT_EQ(store->totalRuns(), 1u);
    EXPECT_EQ(store->groupMetric(0),
              (std::vector<double>{10.0}));
}

TEST(ResultStore, ToleratesTornFinalLine)
{
    const std::string dir = freshDir("torn");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        store->appendRun(record(0, 0, 5.5));
        store->appendRun(record(0, 1, 6.5));
    }
    {
        // A crash mid-append leaves a partial line with no newline.
        std::ofstream f(dir + "/manifest.jsonl",
                        std::ios::app | std::ios::binary);
        f << "{\"type\":\"run\",\"group\":0,\"ru";
    }
    auto store = ResultStore::open(dir);
    EXPECT_EQ(store->totalRuns(), 2u);
    EXPECT_EQ(store->groupMetric(0),
              (std::vector<double>{5.5, 6.5}));
    // The store must still be appendable after recovery.
    store->appendRun(record(0, 2, 7.5));
    EXPECT_EQ(store->groupMetric(0),
              (std::vector<double>{5.5, 6.5, 7.5}));
}

TEST(ResultStore, TornLineRecoveryIsDurable)
{
    // After recovery + append, a second replay sees clean records:
    // the torn bytes must not corrupt the following line.
    const std::string dir = freshDir("torn2");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        store->appendRun(record(0, 0, 5.5));
    }
    {
        std::ofstream f(dir + "/manifest.jsonl",
                        std::ios::app | std::ios::binary);
        f << "{\"type\":\"run\",\"gro";
    }
    {
        auto store = ResultStore::open(dir);
        store->appendRun(record(0, 1, 6.5));
    }
    auto store = ResultStore::open(dir);
    EXPECT_EQ(store->totalRuns(), 2u);
    EXPECT_EQ(store->groupMetric(0),
              (std::vector<double>{5.5, 6.5}));
}

TEST(ResultStore, MetricsRecordsRoundTrip)
{
    const std::string dir = freshDir("metrics");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        RunRecord r0 = record(0, 0, 2.0);
        r0.metrics = {{"system.mem.bus.l2_misses", 3948.0},
                      {"system.kernel.dispatches", 43.0}};
        store->appendRun(r0);
        RunRecord r1 = record(0, 1, 3.0);
        r1.metrics = {{"system.mem.bus.l2_misses", 1.0 / 3.0},
                      {"system.kernel.dispatches", 44.0}};
        store->appendRun(r1);
        // A run with no dump at all (e.g. written by an old binary).
        store->appendRun(record(1, 0, 4.0));
    }
    auto store = ResultStore::open(dir);
    EXPECT_EQ(store->totalRuns(), 3u);

    const auto misses =
        store->groupMetricNamed(0, "system.mem.bus.l2_misses");
    ASSERT_EQ(misses.size(), 2u);
    EXPECT_EQ(misses[0], 3948.0);
    EXPECT_EQ(misses[1], 1.0 / 3.0) << "metric double lost bits";

    // Built-ins bypass the per-run dump entirely.
    EXPECT_EQ(store->groupMetricNamed(0, "cycles_per_txn"),
              store->groupMetric(0));

    // The group-1 run has no dump: the named prefix is empty, and
    // asking for an unknown name is empty everywhere.
    EXPECT_TRUE(
        store->groupMetricNamed(1, "system.mem.bus.l2_misses")
            .empty());
    EXPECT_TRUE(store->groupMetricNamed(0, "no.such.metric")
                    .empty());

    const auto names = store->metricNames();
    ASSERT_GE(names.size(), 2u);
    // Built-ins lead, then the union of per-run metric names sorted.
    EXPECT_EQ(names.front(), "cycles_per_txn");
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "system.kernel.dispatches"),
              names.end());
}

TEST(ResultStore, UnknownRecordTypesAreSkipped)
{
    // Forward compatibility: a manifest written by a newer binary may
    // contain record types this one doesn't know; replay must warn
    // and keep the runs it understands.
    const std::string dir = freshDir("unknown");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        store->appendRun(record(0, 0, 5.0));
    }
    {
        std::ofstream f(dir + "/manifest.jsonl",
                        std::ios::app | std::ios::binary);
        f << "{\"type\":\"frobnicate\",\"x\":1}\n";
    }
    auto store = ResultStore::open(dir);
    EXPECT_EQ(store->totalRuns(), 1u);
    EXPECT_EQ(store->groupMetric(0), (std::vector<double>{5.0}));
}

TEST(ResultStore, PlanRecordRoundTrips)
{
    const std::string dir = freshDir("plan");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        EXPECT_FALSE(store->plan().valid);
        PlanRecord p;
        p.valid = true;
        p.runLength = 2500;
        p.numRuns = 12;
        store->appendPlan(p);
    }
    auto store = ResultStore::open(dir);
    ASSERT_TRUE(store->plan().valid);
    EXPECT_EQ(store->plan().runLength, 2500u);
    EXPECT_EQ(store->plan().numRuns, 12u);
}

TEST(ResultStore, WriterLockExcludesSecondWriter)
{
    const std::string dir = freshDir("lock");
    auto writer = ResultStore::openOrCreate(dir, twoGroupHeader());
    ASSERT_TRUE(writer);

    // A second writable open — a stray `campaign run` aimed at a
    // directory a daemon owns — fails fast instead of interleaving.
    std::string err;
    auto second =
        ResultStore::tryOpenOrCreate(dir, twoGroupHeader(), &err);
    EXPECT_EQ(second, nullptr);
    EXPECT_NE(err.find("locked"), std::string::npos) << err;

    // Releasing the first store releases the lock.
    writer.reset();
    second =
        ResultStore::tryOpenOrCreate(dir, twoGroupHeader(), &err);
    EXPECT_NE(second, nullptr) << err;
}

TEST(ResultStore, ReadOnlyOpenWorksWhileWriterHoldsTheLock)
{
    const std::string dir = freshDir("rolock");
    auto writer = ResultStore::openOrCreate(dir, twoGroupHeader());
    writer->appendRun(record(0, 0, 3.5));

    // Status/report paths read while the daemon is mid-campaign.
    auto reader = ResultStore::openReadOnly(dir);
    EXPECT_EQ(reader->totalRuns(), 1u);
    EXPECT_EQ(reader->groupMetric(0), (std::vector<double>{3.5}));

    // The reader never repairs the manifest: a torn tail is
    // dropped from its replay but left on disk for the writer.
    {
        std::ofstream f(dir + "/manifest.jsonl",
                        std::ios::app | std::ios::binary);
        f << "{\"type\":\"run\",\"gro";
    }
    const auto before =
        std::filesystem::file_size(dir + "/manifest.jsonl");
    auto reader2 = ResultStore::openReadOnly(dir);
    EXPECT_EQ(reader2->totalRuns(), 1u);
    EXPECT_EQ(std::filesystem::file_size(dir + "/manifest.jsonl"),
              before);
}

TEST(ResultStore, EmptyStoreReportSaysSoInsteadOfAnEmptyTable)
{
    const std::string dir = freshDir("emptyrep");
    { ResultStore::openOrCreate(dir, twoGroupHeader()); }
    const auto rep = varsim::campaign::campaignReport(dir);
    EXPECT_NE(rep.text.find("0 run(s)"), std::string::npos);
    EXPECT_NE(rep.text.find("no completed runs"),
              std::string::npos);
    EXPECT_NE(rep.text.find("campaign status"), std::string::npos);
}

TEST(ResultStore, DuplicateRunKeepsItsOwnMetrics)
{
    // Two shards racing the same cell append run+metrics pairs
    // adjacently, so a duplicate interleaves as runA, metricsA,
    // runB, metricsB. The duplicate run is dropped — and its
    // companion metrics record must go with it, not clobber the
    // kept run's dump.
    const std::string dir = freshDir("dupmetrics");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        RunRecord kept = record(0, 0, 2.0);
        kept.metrics = {{"system.kernel.dispatches", 43.0}};
        store->appendRun(kept);
    }
    {
        RunRecord dup = record(0, 0, 2.0);
        dup.metrics = {{"system.kernel.dispatches", 999.0}};
        std::ofstream f(dir + "/manifest.jsonl",
                        std::ios::app | std::ios::binary);
        f << ResultStore::runLineFor(dup) << "\n"
          << ResultStore::metricsLineFor(dup) << "\n";
    }
    auto store = ResultStore::open(dir);
    EXPECT_EQ(store->totalRuns(), 1u);
    const auto xs =
        store->groupMetricNamed(0, "system.kernel.dispatches");
    ASSERT_EQ(xs.size(), 1u);
    EXPECT_EQ(xs[0], 43.0)
        << "the dropped duplicate's metrics clobbered the kept run";
}

TEST(ResultStore, SecondMetricsRecordDoesNotClobber)
{
    // A stray extra metrics record for an already-dumped run (a
    // hand-merged manifest) must not overwrite the first dump.
    const std::string dir = freshDir("extrametrics");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        RunRecord r = record(0, 0, 2.0);
        r.metrics = {{"system.kernel.dispatches", 43.0}};
        store->appendRun(r);
    }
    {
        std::ofstream f(dir + "/manifest.jsonl",
                        std::ios::app | std::ios::binary);
        f << "{\"type\":\"metrics\",\"group\":0,\"run\":0,"
             "\"m:system.kernel.dispatches\":7.0}\n";
    }
    auto store = ResultStore::open(dir);
    const auto xs =
        store->groupMetricNamed(0, "system.kernel.dispatches");
    ASSERT_EQ(xs.size(), 1u);
    EXPECT_EQ(xs[0], 43.0);
}

TEST(ResultStore, OrphanMetricsRecordIsSkipped)
{
    // A metrics record with no run (a hand-edited manifest) is
    // warned about and skipped, never attached to anything.
    const std::string dir = freshDir("orphanmetrics");
    {
        auto store =
            ResultStore::openOrCreate(dir, twoGroupHeader());
        store->appendRun(record(0, 0, 2.0));
    }
    {
        std::ofstream f(dir + "/manifest.jsonl",
                        std::ios::app | std::ios::binary);
        f << "{\"type\":\"metrics\",\"group\":1,\"run\":5,"
             "\"m:system.kernel.dispatches\":7.0}\n";
    }
    auto store = ResultStore::open(dir);
    EXPECT_EQ(store->totalRuns(), 1u);
    EXPECT_TRUE(
        store->groupMetricNamed(1, "system.kernel.dispatches")
            .empty());
    // The store stays appendable and consistent after the skip.
    store->appendRun(record(0, 1, 3.0));
    EXPECT_EQ(store->groupMetric(0),
              (std::vector<double>{2.0, 3.0}));
}

TEST(ResultStoreDeathTest, FingerprintMismatchIsFatal)
{
    const std::string dir = freshDir("mismatch");
    { ResultStore::openOrCreate(dir, twoGroupHeader()); }
    StoreHeader other = twoGroupHeader();
    other.fingerprint = 0xdeadbeefull;
    EXPECT_DEATH(ResultStore::openOrCreate(dir, other),
                 "fingerprint");
}

TEST(ResultStoreDeathTest, OpenMissingStoreIsFatal)
{
    const std::string dir = freshDir("absent");
    EXPECT_DEATH(ResultStore::open(dir), "");
}

TEST(ResultStoreDeathTest, UnknownHeaderVersionIsFatal)
{
    // A manifest from a future format must be rejected, not
    // half-understood: guessed records would silently skew resume
    // decisions and reports.
    const std::string dir = freshDir("futurever");
    std::filesystem::create_directories(dir);
    {
        std::ofstream f(dir + "/manifest.jsonl", std::ios::binary);
        f << "{\"type\":\"header\",\"version\":3,\"fingerprint\":"
             "\"00000000feedface\",\"groups\":2,\"checkpoints\":0,"
             "\"workload\":\"OLTP\",\"configs\":[\"a\",\"b\"]}\n";
    }
    EXPECT_DEATH(ResultStore::openReadOnly(dir), "version");
}

TEST(ResultStoreDeathTest, GarbageFingerprintIsFatal)
{
    // Previously strtoull's errors were ignored and a mangled
    // fingerprint replayed as whatever prefix happened to parse.
    const std::string dir = freshDir("badfp");
    std::filesystem::create_directories(dir);
    {
        std::ofstream f(dir + "/manifest.jsonl", std::ios::binary);
        f << "{\"type\":\"header\",\"version\":1,\"fingerprint\":"
             "\"not-a-fingerprint\",\"groups\":2,\"checkpoints\":0,"
             "\"workload\":\"OLTP\",\"configs\":[\"a\",\"b\"]}\n";
    }
    EXPECT_DEATH(ResultStore::openReadOnly(dir), "fingerprint");
}

} // namespace
