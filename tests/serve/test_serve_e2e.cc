/**
 * @file
 * Daemon-over-socket end-to-end tests: the full client/daemon wire
 * path (ping, submit, watch, status, report, cancel, drain), an
 * abrupt shutdown + restart resuming durable campaigns, and a soak
 * — many concurrent client threads pushing campaigns through one
 * daemon. The soak defaults to a ctest-friendly size; the
 * sanitized CI runner scales it up with VARSIM_SOAK_CAMPAIGNS.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/knobs.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "sim/logging.hh"

namespace
{

using namespace varsim;

std::string
freshRoot(const std::string &name)
{
    const auto p = std::filesystem::temp_directory_path() /
                   ("varsim_test_e2e_" + name);
    std::filesystem::remove_all(p);
    std::filesystem::create_directories(p);
    return p.string();
}

serve::Address
sockAddr(const std::string &root)
{
    serve::Address addr;
    addr.isUnix = true;
    addr.path = root + "/serve.sock";
    return addr;
}

campaign::SpecFields
smallFields(std::uint64_t seed = 11, std::uint64_t runs = 2)
{
    campaign::SpecFields f;
    f.base["cpus"] = "2";
    f.workload = "oltp";
    f.threadsPerCpu = 2;
    f.warmupTxns = 2;
    f.measureTxns = 10;
    f.baseSeed = seed;
    f.fixedRuns = runs;
    return f;
}

serve::Submission
makeSub(const std::string &tenant, const std::string &name,
        const campaign::SpecFields &fields)
{
    serve::Submission sub;
    sub.tenant = tenant;
    sub.name = name;
    sub.fields = fields;
    return sub; // Client::submit stamps the fingerprint
}

TEST(ServeE2e, FullClientJourney)
{
    const std::string root = freshRoot("journey");
    serve::DaemonConfig cfg;
    cfg.root = root;
    cfg.addr = sockAddr(root);
    cfg.workers = 2;
    serve::Daemon daemon(cfg);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    serve::Client client(cfg.addr);
    ASSERT_TRUE(client.ping(&err)) << err;

    serve::Submission sub = makeSub("alice", "one", smallFields());
    ASSERT_TRUE(client.submit(sub, &err)) << err;
    EXPECT_EQ(sub.fingerprintHex.size(), 16u);

    // Watch from seq 0 to terminal; events arrive dense + ordered.
    std::vector<serve::Event> events;
    ASSERT_TRUE(client.watch(
        "alice/one", 0,
        [&](const serve::Event &ev) { events.push_back(ev); },
        &err))
        << err;
    ASSERT_GE(events.size(), 4u);
    EXPECT_EQ(events.back().kind, "complete");
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].seq, i + 1);

    // A late joiner replays only what it asked for.
    std::vector<serve::Event> tail;
    ASSERT_TRUE(client.watch(
        "alice/one", events.size() - 1,
        [&](const serve::Event &ev) { tail.push_back(ev); },
        &err))
        << err;
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail.front().kind, "complete");

    std::vector<serve::CampaignInfo> infos;
    ASSERT_TRUE(client.status("", infos, &err)) << err;
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_EQ(infos.front().state, "complete");
    EXPECT_EQ(infos.front().recorded, 2u);

    // The served report is the CLI report of the same store.
    std::string text;
    ASSERT_TRUE(client.report("alice/one", 0.95, "", text, &err))
        << err;
    EXPECT_EQ(
        text,
        campaign::campaignReport(
            daemon.scheduler().storeDir("alice/one"))
            .text);
    EXPECT_NE(text.find("campaign report"), std::string::npos);

    // Unknown ids and junk are error replies, not hangs.
    EXPECT_FALSE(client.cancel("alice/nosuch", &err));
    EXPECT_FALSE(client.report("no-slash", 0.95, "", text, &err));
    serve::CampaignInfo info;
    EXPECT_FALSE(client.info("alice/nosuch", info, &err));

    ASSERT_TRUE(client.drain(&err)) << err;
    daemon.wait(); // the drain request stops the daemon
    daemon.shutdown();
}

TEST(ServeE2e, SubmitRejectionsCarryDaemonMessages)
{
    const std::string root = freshRoot("rejects");
    serve::DaemonConfig cfg;
    cfg.root = root;
    cfg.addr = sockAddr(root);
    cfg.workers = 1;
    serve::Daemon daemon(cfg);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    serve::Client client(cfg.addr);

    serve::Submission bad = makeSub("t", "bad", smallFields());
    bad.fields.workload = "quake"; // fails buildSpec client-side
    EXPECT_FALSE(client.submit(bad, &err));
    EXPECT_NE(err.find("workload"), std::string::npos);

    serve::Submission dup = makeSub("t", "dup", smallFields());
    ASSERT_TRUE(client.submit(dup, &err)) << err;
    serve::Submission dup2 =
        makeSub("t", "dup", smallFields(999));
    EXPECT_FALSE(client.submit(dup2, &err));
    EXPECT_NE(err.find("different fields"), std::string::npos);

    daemon.shutdown();
}

TEST(ServeE2e, AbruptShutdownThenRestartResumes)
{
    const std::string root = freshRoot("restart");
    const campaign::SpecFields fields = smallFields(55, 3);
    std::string err;
    {
        serve::DaemonConfig cfg;
        cfg.root = root;
        cfg.addr = sockAddr(root);
        cfg.workers = 2;
        serve::Daemon daemon(cfg);
        ASSERT_TRUE(daemon.start(&err)) << err;
        serve::Client client(cfg.addr);
        for (int i = 0; i < 5; ++i) {
            serve::Submission sub = makeSub(
                i % 2 ? "a" : "b", "c" + std::to_string(i),
                fields);
            ASSERT_TRUE(client.submit(sub, &err)) << err;
        }
        // No drain: like a power cut, in-flight work is dropped
        // and only the durable state survives.
        daemon.shutdown();
    }

    serve::DaemonConfig cfg;
    cfg.root = root;
    cfg.addr = sockAddr(root);
    cfg.workers = 2;
    serve::Daemon daemon(cfg);
    ASSERT_TRUE(daemon.start(&err)) << err;
    EXPECT_EQ(daemon.resumedCount(), 5u);

    serve::Client client(cfg.addr);
    ASSERT_TRUE(client.drain(&err)) << err;
    // drain stops the acceptor eventually; query the scheduler.
    for (const auto &info : daemon.scheduler().status()) {
        EXPECT_EQ(info.state, "complete") << info.id;
        EXPECT_EQ(info.recorded, 3u) << info.id;
    }
    daemon.wait();
    daemon.shutdown();
}

TEST(ServeE2e, SoakManyClientsManyCampaigns)
{
    // Defaults sized for ctest; the sanitized runner sets
    // VARSIM_SOAK_CAMPAIGNS=200+ for the real soak.
    std::size_t total = 24;
    if (const char *env = std::getenv("VARSIM_SOAK_CAMPAIGNS"))
        total = std::strtoull(env, nullptr, 10);
    const std::size_t clients = 8;

    const std::string root = freshRoot("soak");
    serve::DaemonConfig cfg;
    cfg.root = root;
    cfg.addr = sockAddr(root);
    cfg.workers = 4;
    serve::Daemon daemon(cfg);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;

    std::atomic<std::size_t> submitted{0};
    std::atomic<std::size_t> watched{0};
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            serve::Client client(cfg.addr);
            for (std::size_t i = c; i < total; i += clients) {
                std::string terr;
                serve::Submission sub = makeSub(
                    "tenant" + std::to_string(i % 5),
                    "camp" + std::to_string(i),
                    smallFields(1000 + i, 2));
                if (!client.submit(sub, &terr)) {
                    ++failures;
                    continue;
                }
                ++submitted;
                // Every 3rd submitter stays attached to the
                // stream; the rest poll status like a dashboard.
                if (i % 3 == 0) {
                    bool sawComplete = false;
                    if (client.watch(
                            sub.id(), 0,
                            [&](const serve::Event &ev) {
                                sawComplete |=
                                    ev.kind == "complete";
                            },
                            &terr) &&
                        sawComplete)
                        ++watched;
                    else
                        ++failures;
                } else {
                    std::vector<serve::CampaignInfo> infos;
                    if (!client.status(sub.tenant, infos, &terr))
                        ++failures;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();

    serve::Client client(cfg.addr);
    ASSERT_TRUE(client.drain(&err)) << err;

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(submitted.load(), total);
    EXPECT_EQ(watched.load(), (total + 2) / 3);
    const auto infos = daemon.scheduler().status();
    ASSERT_EQ(infos.size(), total);
    for (const auto &info : infos)
        EXPECT_EQ(info.state, "complete") << info.id;
    EXPECT_EQ(daemon.scheduler().cellsExecuted(), total * 2u);

    daemon.wait();
    daemon.shutdown();
}

} // namespace
