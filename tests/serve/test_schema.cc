/**
 * @file
 * Submission-schema tests: field round trips, name validation,
 * version gating, and the fingerprint-echo skew check — a
 * submission that decodes into different spec fields than the
 * client encoded must be rejected, never silently run.
 */

#include <gtest/gtest.h>

#include "campaign/knobs.hh"
#include "serve/schema.hh"
#include "sim/logging.hh"

namespace
{

using namespace varsim;

serve::Submission
sampleSubmission()
{
    serve::Submission sub;
    sub.tenant = "alice";
    sub.name = "assoc-sweep";
    sub.priority = -3;
    sub.fields.base["cpus"] = "4";
    sub.fields.base["dram"] = "120";
    sub.fields.vary = {"l2-assoc=1,2,4", "prefetch=on,off"};
    sub.fields.workload = "specjbb";
    sub.fields.threadsPerCpu = 2;
    sub.fields.warmupTxns = 7;
    sub.fields.measureTxns = 1000;
    sub.fields.lookahead = -1;
    sub.fields.sample = "stratified:200:20:40";
    sub.fields.baseSeed = 4242;
    sub.fields.numCheckpoints = 3;
    sub.fields.checkpointStep = 111;
    sub.fields.strategy = "random";
    sub.fields.fixedRuns = 9;
    sub.fields.relativeError = 0.05;
    sub.fields.alpha = 0.01;
    sub.fingerprintHex = "00c0ffee00c0ffee";
    return sub;
}

TEST(ServeSchema, SubmissionRoundTrips)
{
    const serve::Submission sub = sampleSubmission();
    sim::JsonLine obj;
    ASSERT_TRUE(obj.parse(serve::encodeSubmission(sub)));

    serve::Submission got;
    std::string err;
    ASSERT_TRUE(serve::decodeSubmission(obj, got, &err)) << err;
    EXPECT_EQ(got.tenant, "alice");
    EXPECT_EQ(got.name, "assoc-sweep");
    EXPECT_EQ(got.priority, -3);
    EXPECT_EQ(got.fingerprintHex, "00c0ffee00c0ffee");
    EXPECT_EQ(got.fields.base, sub.fields.base);
    EXPECT_EQ(got.fields.vary, sub.fields.vary);
    EXPECT_EQ(got.fields.workload, "specjbb");
    EXPECT_EQ(got.fields.sample, "stratified:200:20:40");
    EXPECT_EQ(got.fields.strategy, "random");
    EXPECT_EQ(got.fields.lookahead, -1);
    EXPECT_EQ(got.fields.fixedRuns, 9u);
    EXPECT_DOUBLE_EQ(got.fields.relativeError, 0.05);
    EXPECT_DOUBLE_EQ(got.fields.alpha, 0.01);

    // The real skew detector: both sides' buildSpec agree, so the
    // decoded fields fingerprint identically to the encoded ones.
    campaign::CampaignSpec sent, received;
    ASSERT_TRUE(campaign::buildSpec(sub.fields, sent, &err))
        << err;
    ASSERT_TRUE(campaign::buildSpec(got.fields, received, &err))
        << err;
    EXPECT_EQ(sent.fingerprint(), received.fingerprint());
}

TEST(ServeSchema, DefaultsSurviveARoundTrip)
{
    serve::Submission sub;
    sub.tenant = "t";
    sub.name = "n";
    sub.fingerprintHex = "1";
    sim::JsonLine obj;
    ASSERT_TRUE(obj.parse(serve::encodeSubmission(sub)));
    serve::Submission got;
    std::string err;
    ASSERT_TRUE(serve::decodeSubmission(obj, got, &err)) << err;

    const campaign::SpecFields dflt;
    EXPECT_EQ(got.fields.workload, dflt.workload);
    EXPECT_EQ(got.fields.pilotRuns, dflt.pilotRuns);
    EXPECT_EQ(got.fields.maxRuns, dflt.maxRuns);
    EXPECT_EQ(got.fields.lookahead, dflt.lookahead);
    EXPECT_DOUBLE_EQ(got.fields.alpha, dflt.alpha);
    EXPECT_DOUBLE_EQ(got.fields.confidence, dflt.confidence);
}

TEST(ServeSchema, UnsupportedVersionIsRejected)
{
    std::string payload =
        serve::encodeSubmission(sampleSubmission());
    const std::string v =
        "\"schema\":" + std::to_string(serve::kSchemaVersion);
    const auto at = payload.find(v);
    ASSERT_NE(at, std::string::npos);
    payload.replace(at, v.size(), "\"schema\":999");

    sim::JsonLine obj;
    ASSERT_TRUE(obj.parse(payload));
    serve::Submission got;
    std::string err;
    EXPECT_FALSE(serve::decodeSubmission(obj, got, &err));
    EXPECT_NE(err.find("schema"), std::string::npos);
}

TEST(ServeSchema, NamesAreValidatedAsPathComponents)
{
    EXPECT_TRUE(serve::validName("alice"));
    EXPECT_TRUE(serve::validName("a1_B-2.c"));
    EXPECT_FALSE(serve::validName(""));
    EXPECT_FALSE(serve::validName(".."));
    EXPECT_FALSE(serve::validName(".hidden"));
    EXPECT_FALSE(serve::validName("a/b"));
    EXPECT_FALSE(serve::validName("a b"));
    EXPECT_FALSE(serve::validName(std::string(65, 'a')));

    serve::Submission sub = sampleSubmission();
    sub.tenant = "../escape";
    sim::JsonLine obj;
    ASSERT_TRUE(obj.parse(serve::encodeSubmission(sub)));
    serve::Submission got;
    std::string err;
    EXPECT_FALSE(serve::decodeSubmission(obj, got, &err));
    EXPECT_NE(err.find("tenant"), std::string::npos);
}

TEST(ServeSchema, EventsRoundTrip)
{
    serve::Event ev;
    ev.seq = 17;
    ev.kind = "run";
    ev.campaignId = "alice/assoc-sweep";
    ev.group = 2;
    ev.runIdx = 5;
    ev.value = 10584.25;
    ev.recorded = 11;
    ev.target = 24;

    sim::JsonLine obj;
    ASSERT_TRUE(obj.parse(serve::encodeEvent(ev)));
    serve::Event got;
    ASSERT_TRUE(serve::decodeEvent(obj, got));
    EXPECT_EQ(got.seq, 17u);
    EXPECT_EQ(got.kind, "run");
    EXPECT_EQ(got.campaignId, "alice/assoc-sweep");
    EXPECT_EQ(got.group, 2u);
    EXPECT_EQ(got.runIdx, 5u);
    EXPECT_DOUBLE_EQ(got.value, 10584.25);
    EXPECT_EQ(got.recorded, 11u);
    EXPECT_EQ(got.target, 24u);

    serve::Event fail;
    fail.seq = 18;
    fail.kind = "failed";
    fail.campaignId = "alice/assoc-sweep";
    fail.message = "spec fingerprint mismatch";
    ASSERT_TRUE(obj.parse(serve::encodeEvent(fail)));
    ASSERT_TRUE(serve::decodeEvent(obj, got));
    EXPECT_EQ(got.kind, "failed");
    EXPECT_EQ(got.message, "spec fingerprint mismatch");
}

TEST(ServeSchema, CampaignInfoRoundTrips)
{
    serve::CampaignInfo info;
    info.id = "bob/big";
    info.state = "running";
    info.priority = 7;
    info.recorded = 40;
    info.target = 96;
    info.inFlight = 4;

    sim::JsonLine obj;
    ASSERT_TRUE(obj.parse(serve::encodeInfo(info)));
    serve::CampaignInfo got;
    ASSERT_TRUE(serve::decodeInfo(obj, got));
    EXPECT_EQ(got.id, "bob/big");
    EXPECT_EQ(got.state, "running");
    EXPECT_EQ(got.priority, 7);
    EXPECT_EQ(got.recorded, 40u);
    EXPECT_EQ(got.target, 96u);
    EXPECT_EQ(got.inFlight, 4u);
    EXPECT_TRUE(got.error.empty());
}

} // namespace
