/**
 * @file
 * Scheduler tests: admission (validation, fingerprint skew,
 * duplicates), multi-tenant completion, durable cancel, hard-stop
 * crash simulation + resumeAll, and the headline contract — a
 * served campaign's records and report are bit-identical to the
 * same submission run through the CLI's runCampaign path.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>

#include "campaign/campaign.hh"
#include "campaign/knobs.hh"
#include "serve/scheduler.hh"
#include "sim/logging.hh"

namespace
{

using namespace varsim;

std::string
freshRoot(const std::string &name)
{
    const auto p = std::filesystem::temp_directory_path() /
                   ("varsim_test_sched_" + name);
    std::filesystem::remove_all(p);
    std::filesystem::create_directories(p);
    return p.string();
}

/** Small, fast campaign fields every test starts from. */
campaign::SpecFields
smallFields(std::uint64_t seed = 11)
{
    campaign::SpecFields f;
    f.base["cpus"] = "2";
    f.workload = "oltp";
    f.threadsPerCpu = 2;
    f.warmupTxns = 5;
    f.measureTxns = 20;
    f.baseSeed = seed;
    f.fixedRuns = 3;
    return f;
}

serve::Submission
makeSub(const std::string &tenant, const std::string &name,
        const campaign::SpecFields &fields, int priority = 0)
{
    serve::Submission sub;
    sub.tenant = tenant;
    sub.name = name;
    sub.priority = priority;
    sub.fields = fields;
    campaign::CampaignSpec spec;
    std::string err;
    EXPECT_TRUE(campaign::buildSpec(fields, spec, &err)) << err;
    sub.fingerprintHex = sim::format(
        "%016llx",
        static_cast<unsigned long long>(spec.fingerprint()));
    return sub;
}

/** Sorted full record lines of a manifest (order-independent). */
std::multiset<std::string>
manifestRecords(const std::string &dir)
{
    std::multiset<std::string> out;
    std::ifstream in(dir + "/manifest.jsonl");
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            out.insert(line);
    return out;
}

TEST(ServeScheduler, RunsOneCampaignToCompletion)
{
    const std::string root = freshRoot("single");
    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 2;
    serve::Scheduler sched(cfg);

    std::string err;
    ASSERT_TRUE(sched.submit(makeSub("alice", "one", smallFields()),
                             &err))
        << err;
    sched.drain();

    serve::CampaignInfo info;
    ASSERT_TRUE(sched.info("alice/one", info));
    EXPECT_EQ(info.state, "complete");
    EXPECT_EQ(info.recorded, 3u);
    EXPECT_EQ(info.target, 3u);
    EXPECT_EQ(sched.cellsExecuted(), 3u);

    // Events: a round announcement, one per run, then complete.
    std::vector<serve::Event> events;
    bool terminal = false;
    ASSERT_TRUE(
        sched.waitEvents("alice/one", 0, 0, events, &terminal));
    ASSERT_TRUE(terminal);
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events.front().kind, "round");
    EXPECT_EQ(events.back().kind, "complete");
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].seq, i + 1);
}

TEST(ServeScheduler, ServedRecordsAreBitIdenticalToTheCli)
{
    const campaign::SpecFields fields = smallFields(77);

    // CLI path: the same fields through buildSpec + runCampaign.
    const std::string cliDir = freshRoot("bitcli") + "/store";
    campaign::CampaignSpec spec;
    std::string err;
    ASSERT_TRUE(campaign::buildSpec(fields, spec, &err)) << err;
    campaign::CampaignOptions opt;
    opt.hostThreads = 2;
    campaign::runCampaign(spec, cliDir, opt);

    // Daemon path: the same fields as a submission.
    const std::string root = freshRoot("bitsrv");
    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 3;
    serve::Scheduler sched(cfg);
    ASSERT_TRUE(sched.submit(makeSub("t", "c", fields), &err))
        << err;
    sched.drain();

    // Same record set (append order is scheduling-dependent even
    // between two CLI runs, so compare as sets) and the same
    // rendered report, byte for byte.
    const auto cli = manifestRecords(cliDir);
    const auto srv = manifestRecords(sched.storeDir("t/c"));
    EXPECT_EQ(cli, srv);
    EXPECT_EQ(campaign::campaignReport(cliDir).text,
              campaign::campaignReport(sched.storeDir("t/c")).text);
}

TEST(ServeScheduler, ManyTenantsAllComplete)
{
    const std::string root = freshRoot("tenants");
    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 4;
    serve::Scheduler sched(cfg);

    std::string err;
    const char *tenants[] = {"alice", "bob", "carol"};
    for (const char *tenant : tenants)
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(
                sched.submit(
                    makeSub(tenant, "c" + std::to_string(i),
                            smallFields(100 + i), i),
                    &err))
                << err;
    sched.drain();

    const auto infos = sched.status();
    ASSERT_EQ(infos.size(), 9u);
    for (const auto &info : infos)
        EXPECT_EQ(info.state, "complete") << info.id;
    EXPECT_EQ(sched.cellsExecuted(), 9u * 3u);

    const auto one = sched.status("bob");
    EXPECT_EQ(one.size(), 3u);
}

TEST(ServeScheduler, RejectsBadSubmissions)
{
    const std::string root = freshRoot("reject");
    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 1;
    serve::Scheduler sched(cfg);
    std::string err;

    // Fingerprint skew: client claims a different spec.
    serve::Submission skew = makeSub("t", "skew", smallFields());
    skew.fingerprintHex = "deadbeefdeadbeef";
    EXPECT_FALSE(sched.submit(skew, &err));
    EXPECT_NE(err.find("fingerprint"), std::string::npos);

    // Bad spec fields surface buildSpec's own message.
    campaign::SpecFields bad = smallFields();
    bad.strategy = "psychic";
    serve::Submission badSub;
    badSub.tenant = "t";
    badSub.name = "bad";
    badSub.fields = bad;
    badSub.fingerprintHex = "1";
    EXPECT_FALSE(sched.submit(badSub, &err));
    EXPECT_NE(err.find("strategy"), std::string::npos);

    // Bad names never become paths.
    serve::Submission traversal = makeSub("t", "ok", smallFields());
    traversal.tenant = "../up";
    EXPECT_FALSE(sched.submit(traversal, &err));

    // Same id, identical fields: idempotent ack. Different
    // fields: conflict.
    ASSERT_TRUE(sched.submit(makeSub("t", "dup", smallFields()),
                             &err))
        << err;
    EXPECT_TRUE(
        sched.submit(makeSub("t", "dup", smallFields()), &err));
    EXPECT_FALSE(sched.submit(
        makeSub("t", "dup", smallFields(999)), &err));
    EXPECT_NE(err.find("different fields"), std::string::npos);
    sched.drain();
}

TEST(ServeScheduler, ConflictingConcurrentSubmitsNeverBothAck)
{
    // Two clients race a first-time submit of the same id with
    // *different* fields: at most one may be acked, and whatever
    // lands in submission.json must be the acked job's fields —
    // otherwise a restart resumes a spec nobody was told is
    // running.
    const std::string root = freshRoot("race");
    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 2;
    serve::Scheduler sched(cfg);

    const serve::Submission a = makeSub("t", "conc", smallFields(1));
    const serve::Submission b = makeSub("t", "conc", smallFields(2));
    bool okA = false, okB = false;
    std::thread ta([&] {
        std::string err;
        okA = sched.submit(a, &err);
    });
    std::thread tb([&] {
        std::string err;
        okB = sched.submit(b, &err);
    });
    ta.join();
    tb.join();
    ASSERT_NE(okA, okB); // exactly one admitted

    const std::string onDisk =
        [&] {
            std::ifstream in(root + "/tenants/t/conc/submission.json");
            std::string line;
            std::getline(in, line);
            return line;
        }();
    EXPECT_EQ(onDisk, serve::encodeSubmission(okA ? a : b));

    // The loser keeps failing; the winner's resubmit still acks.
    std::string err;
    EXPECT_FALSE(sched.submit(okA ? b : a, &err));
    EXPECT_NE(err.find("different fields"), std::string::npos);
    EXPECT_TRUE(sched.submit(okA ? a : b, &err)) << err;
    sched.drain();
}

TEST(ServeScheduler, CancelRacesStartupSafely)
{
    // Cancel landing inside the startup -> first-frontier window
    // used to free the Execution a worker was still reading
    // (startJob dropped `starting` before replaying the store).
    // Hammer that window: each round submits and immediately
    // cancels from this thread while a worker is starting the job.
    // TSan runs of this suite hold the no-use-after-free claim.
    const std::string root = freshRoot("cancelrace");
    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 2;
    serve::Scheduler sched(cfg);
    std::string err;
    campaign::SpecFields big = smallFields();
    big.fixedRuns = 20;
    for (int i = 0; i < 20; ++i) {
        const std::string name = "r" + std::to_string(i);
        ASSERT_TRUE(
            sched.submit(makeSub("t", name, big, 0), &err))
            << err;
        ASSERT_TRUE(sched.cancel("t/" + name, &err)) << err;
    }
    sched.drain();
    for (const auto &info : sched.status()) {
        // Every job must reach a terminal state (cancelled, or
        // complete when the workers outran the cancel).
        EXPECT_TRUE(info.state == "cancelled" ||
                    info.state == "complete")
            << info.id << " stuck in " << info.state;
    }
}

TEST(ServeScheduler, WaitEventsClampsOutOfRangeCursor)
{
    const std::string root = freshRoot("cursor");
    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 1;
    serve::Scheduler sched(cfg);
    std::string err;
    ASSERT_TRUE(sched.submit(makeSub("t", "one", smallFields()),
                             &err))
        << err;
    sched.drain();

    // A cursor far past the last event must still observe the
    // terminal state (empty batch, terminal=true) instead of
    // keeping a watcher polling forever.
    std::vector<serve::Event> events;
    bool terminal = false;
    ASSERT_TRUE(
        sched.waitEvents("t/one", 9999, 0, events, &terminal));
    EXPECT_TRUE(events.empty());
    EXPECT_TRUE(terminal);
}

TEST(ServeScheduler, CancelIsDurable)
{
    const std::string root = freshRoot("cancel");
    std::string err;
    {
        serve::SchedulerConfig cfg;
        cfg.root = root;
        cfg.workers = 1;
        serve::Scheduler sched(cfg);
        campaign::SpecFields big = smallFields();
        big.fixedRuns = 50; // enough frontier to cancel into
        ASSERT_TRUE(sched.submit(makeSub("t", "big", big), &err))
            << err;
        ASSERT_TRUE(sched.cancel("t/big", &err)) << err;
        EXPECT_TRUE(sched.cancel("t/big", &err)); // idempotent
        EXPECT_FALSE(sched.cancel("t/nosuch", &err));
        sched.drain();
        serve::CampaignInfo info;
        ASSERT_TRUE(sched.info("t/big", info));
        EXPECT_EQ(info.state, "cancelled");
    }
    // A restarted scheduler sees the marker and never reruns it.
    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 1;
    serve::Scheduler sched(cfg);
    EXPECT_EQ(sched.resumeAll(), 0u);
    serve::CampaignInfo info;
    ASSERT_TRUE(sched.info("t/big", info));
    EXPECT_EQ(info.state, "cancelled");
}

TEST(ServeScheduler, HardStopThenResumeCompletesEverything)
{
    const std::string root = freshRoot("resume");
    const campaign::SpecFields fields = smallFields(33);
    std::string err;
    {
        serve::SchedulerConfig cfg;
        cfg.root = root;
        cfg.workers = 2;
        serve::Scheduler sched(cfg);
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(sched.submit(
                            makeSub(i % 2 ? "a" : "b",
                                    "c" + std::to_string(i),
                                    fields),
                            &err))
                << err;
        // Hard stop without drain: undispatched cells are simply
        // dropped, like a kill between store appends. The durable
        // state (submission.json + manifests) is all that's left.
        sched.stop();
    }

    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 2;
    serve::Scheduler sched(cfg);
    EXPECT_EQ(sched.resumeAll(), 4u);
    sched.drain();

    const auto infos = sched.status();
    ASSERT_EQ(infos.size(), 4u);
    for (const auto &info : infos) {
        EXPECT_EQ(info.state, "complete") << info.id;
        EXPECT_EQ(info.recorded, 3u) << info.id;
    }

    // And the resumed stores still match the CLI run bit for bit.
    const std::string cliDir = freshRoot("resumecli") + "/store";
    campaign::CampaignSpec spec;
    ASSERT_TRUE(campaign::buildSpec(fields, spec, &err)) << err;
    campaign::CampaignOptions opt;
    opt.hostThreads = 2;
    campaign::runCampaign(spec, cliDir, opt);
    EXPECT_EQ(manifestRecords(cliDir),
              manifestRecords(sched.storeDir("a/c1")));
}

TEST(ServeScheduler, DrainingRefusesNewWork)
{
    const std::string root = freshRoot("drainref");
    serve::SchedulerConfig cfg;
    cfg.root = root;
    cfg.workers = 1;
    serve::Scheduler sched(cfg);
    sched.drain(); // empty: returns immediately, stays draining
    std::string err;
    EXPECT_FALSE(
        sched.submit(makeSub("t", "late", smallFields()), &err));
    EXPECT_NE(err.find("draining"), std::string::npos);
}

} // namespace
