/**
 * @file
 * Wire-protocol tests: frame round trips over a socketpair, size
 * caps, magic/garbage rejection, and address parsing.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "serve/protocol.hh"

namespace
{

using namespace varsim;

/** Connected FrameIo pair over an AF_UNIX socketpair. */
struct IoPair
{
    IoPair()
    {
        int sv[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        a = std::make_unique<serve::FrameIo>(sv[0]);
        b = std::make_unique<serve::FrameIo>(sv[1]);
    }
    std::unique_ptr<serve::FrameIo> a, b;
};

TEST(ServeProtocol, FramesRoundTrip)
{
    IoPair io;
    ASSERT_TRUE(io.a->send("{\"req\": \"ping\"}"));
    ASSERT_TRUE(io.a->send("")); // empty payloads are legal
    std::string got;
    ASSERT_TRUE(io.b->recv(got));
    EXPECT_EQ(got, "{\"req\": \"ping\"}");
    ASSERT_TRUE(io.b->recv(got));
    EXPECT_EQ(got, "");
}

TEST(ServeProtocol, LargePayloadSurvivesIntact)
{
    IoPair io;
    std::string big(200 * 1024, 'x');
    for (std::size_t i = 0; i < big.size(); i += 7)
        big[i] = static_cast<char>('a' + i % 26);
    // A 200 KiB frame overflows the socketpair buffer, so the
    // writer must run concurrently with the reader.
    std::thread writer(
        [&] { EXPECT_TRUE(io.a->send(big)); });
    std::string got;
    ASSERT_TRUE(io.b->recv(got));
    writer.join();
    EXPECT_EQ(got, big);
}

TEST(ServeProtocol, OversizedFrameIsRefusedBySender)
{
    IoPair io;
    const std::string big(serve::kMaxFrameBytes + 1, 'x');
    EXPECT_FALSE(io.a->send(big));
    EXPECT_NE(io.a->errorText().find("too large"),
              std::string::npos);
}

TEST(ServeProtocol, GarbageHeaderIsRejected)
{
    IoPair io;
    const std::string junk = "GET / HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(io.a->fd(), junk.data(), junk.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(junk.size()));
    std::string got;
    EXPECT_FALSE(io.b->recv(got));
}

TEST(ServeProtocol, OverlongClaimedLengthIsRejected)
{
    IoPair io;
    const std::string head = "VSRV1 99999999999\n";
    ASSERT_EQ(::send(io.a->fd(), head.data(), head.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(head.size()));
    std::string got;
    EXPECT_FALSE(io.b->recv(got));
    EXPECT_NE(io.b->errorText().find("length"),
              std::string::npos);
}

TEST(ServeProtocol, PeerCloseIsACleanRecvFailure)
{
    IoPair io;
    io.a.reset(); // closes the fd
    std::string got;
    EXPECT_FALSE(io.b->recv(got));
    EXPECT_NE(io.b->errorText().find("closed"),
              std::string::npos);
}

TEST(ServeProtocol, AddressParsing)
{
    serve::Address addr;
    std::string err;

    ASSERT_TRUE(
        serve::Address::parse("unix:/tmp/x.sock", addr, &err));
    EXPECT_TRUE(addr.isUnix);
    EXPECT_EQ(addr.path, "/tmp/x.sock");
    EXPECT_EQ(addr.toString(), "unix:/tmp/x.sock");

    ASSERT_TRUE(serve::Address::parse("tcp:7070", addr, &err));
    EXPECT_FALSE(addr.isUnix);
    EXPECT_EQ(addr.host, "127.0.0.1");
    EXPECT_EQ(addr.port, 7070);

    ASSERT_TRUE(
        serve::Address::parse("tcp:10.1.2.3:99", addr, &err));
    EXPECT_EQ(addr.host, "10.1.2.3");
    EXPECT_EQ(addr.port, 99);

    EXPECT_FALSE(serve::Address::parse("unix:", addr, &err));
    EXPECT_FALSE(serve::Address::parse("tcp:0", addr, &err));
    EXPECT_FALSE(serve::Address::parse("tcp:http", addr, &err));
    EXPECT_FALSE(
        serve::Address::parse("/just/a/path", addr, &err));
    EXPECT_NE(err.find("unix:"), std::string::npos);
}

TEST(ServeProtocol, ListenAndConnectOverUnixSocket)
{
    serve::Address addr;
    addr.isUnix = true;
    addr.path = (std::filesystem::temp_directory_path() /
                 "varsim_test_proto.sock")
                    .string();

    std::string err;
    const int lfd = serve::listenOn(addr, &err);
    ASSERT_GE(lfd, 0) << err;

    const int cfd = serve::connectTo(addr, &err);
    ASSERT_GE(cfd, 0) << err;
    const int afd = ::accept(lfd, nullptr, nullptr);
    ASSERT_GE(afd, 0);

    serve::FrameIo client(cfd), server(afd);
    ASSERT_TRUE(client.send("hello"));
    std::string got;
    ASSERT_TRUE(server.recv(got));
    EXPECT_EQ(got, "hello");
    ::close(lfd);
    ::unlink(addr.path.c_str());
}

} // namespace
