/**
 * @file
 * Checkpoint-library tests: content-addressed publish/fetch, reopen
 * persistence, crash-safety (a killed writer leaves only swept-away
 * temporaries, never a corrupt published object), index self-repair,
 * and gc eviction.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "ckpt/archive.hh"
#include "ckpt/library.hh"
#include "core/varsim.hh"

namespace
{

using namespace varsim;

std::string
freshDir(const std::string &name)
{
    const auto p = std::filesystem::temp_directory_path() /
                   ("varsim_test_ckptlib_" + name + ".ckpt");
    std::filesystem::remove_all(p);
    return p.string();
}

/**
 * A key whose identity knobs are easy to vary. The library never
 * inspects payload bytes beyond storing them, so tests use small
 * synthetic snapshots instead of multi-megabyte real ones.
 */
ckpt::CheckpointKey
makeKey(std::uint64_t position = 15, std::uint64_t seed = 7,
        std::uint32_t l2AssocShift = 0)
{
    ckpt::CheckpointKey key;
    key.sys = core::SystemConfig::testDefault();
    key.sys.mem.l2Assoc <<= l2AssocShift;
    key.wl.kind = workload::WorkloadKind::Oltp;
    key.wl.threadsPerCpu = 2;
    key.warmupSeed = seed;
    key.position = position;
    return key;
}

core::Checkpoint
makeSnapshot(std::uint8_t tag = 0xa5)
{
    core::Checkpoint cp;
    for (int i = 0; i < 48; ++i)
        cp.bytes.push_back(static_cast<std::uint8_t>(tag ^ i));
    return cp;
}

std::string
soleObjectPath(const std::string &dir)
{
    for (const auto &e :
         std::filesystem::directory_iterator(dir + "/objects"))
        return e.path().string();
    ADD_FAILURE() << "no object file in " << dir;
    return "";
}

TEST(CkptLibrary, PublishThenFetchRoundTrips)
{
    const std::string dir = freshDir("roundtrip");
    auto lib = ckpt::CheckpointLibrary::open(dir);

    const auto key = makeKey();
    const auto cp = makeSnapshot();
    EXPECT_TRUE(lib->publish(key, cp));

    core::Checkpoint got;
    ASSERT_TRUE(lib->fetch(key, got));
    EXPECT_EQ(got.bytes, cp.bytes);

    const auto st = lib->stats();
    EXPECT_EQ(st.entries, 1u);
    EXPECT_EQ(st.published, 1u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 0u);
    EXPECT_GT(st.bytes, cp.bytes.size());
}

TEST(CkptLibrary, AnyKeyDeltaIsAMiss)
{
    const std::string dir = freshDir("keydelta");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    lib->publish(makeKey(), makeSnapshot());

    core::Checkpoint got;
    EXPECT_FALSE(lib->fetch(makeKey(16, 7, 0), got)); // position
    EXPECT_FALSE(lib->fetch(makeKey(15, 8, 0), got)); // warm seed
    EXPECT_FALSE(lib->fetch(makeKey(15, 7, 1), got)); // system knob
    EXPECT_EQ(lib->stats().misses, 3u);
}

TEST(CkptLibrary, ReopenSeesPublishedEntries)
{
    const std::string dir = freshDir("reopen");
    {
        auto lib = ckpt::CheckpointLibrary::open(dir);
        lib->publish(makeKey(10), makeSnapshot(0x10));
        lib->publish(makeKey(20), makeSnapshot(0x20));
    }
    auto lib = ckpt::CheckpointLibrary::open(dir);
    const auto entries = lib->entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].position, 10u);
    EXPECT_EQ(entries[1].position, 20u);

    core::Checkpoint got;
    ASSERT_TRUE(lib->fetch(makeKey(20), got));
    EXPECT_EQ(got.bytes, makeSnapshot(0x20).bytes);
}

TEST(CkptLibrary, RepublishAndCrossProcessRaceReturnFalse)
{
    const std::string dir = freshDir("race");
    auto a = ckpt::CheckpointLibrary::open(dir);
    EXPECT_TRUE(a->publish(makeKey(), makeSnapshot()));
    EXPECT_FALSE(a->publish(makeKey(), makeSnapshot()));

    // A second handle on the same directory — another shard — loses
    // the race benignly: the object already exists.
    auto b = ckpt::CheckpointLibrary::open(dir);
    EXPECT_FALSE(b->publish(makeKey(), makeSnapshot()));
    EXPECT_EQ(b->stats().entries, 1u);
}

TEST(CkptLibrary, FetchNeedsNoIndexAndVerifyRebuildsIt)
{
    const std::string dir = freshDir("noindex");
    {
        auto lib = ckpt::CheckpointLibrary::open(dir);
        lib->publish(makeKey(), makeSnapshot());
    }
    // Losing the index (crash between rename and append, or a
    // deleted file) must not lose the object.
    std::filesystem::remove(dir + "/index.jsonl");

    auto lib = ckpt::CheckpointLibrary::open(dir);
    EXPECT_TRUE(lib->entries().empty());

    core::Checkpoint got;
    EXPECT_TRUE(lib->fetch(makeKey(), got));

    const auto rep = lib->verify();
    EXPECT_TRUE(rep.clean()) << rep.toString();
    EXPECT_EQ(rep.reindexed, 1u);
    EXPECT_EQ(lib->entries().size(), 1u);
}

TEST(CkptLibrary, CorruptObjectIsAMissNeverAnAbort)
{
    const std::string dir = freshDir("corrupt");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    lib->publish(makeKey(), makeSnapshot());

    // Flip one payload byte on disk.
    const std::string obj = soleObjectPath(dir);
    {
        std::fstream f(obj, std::ios::in | std::ios::out |
                                std::ios::binary);
        f.seekp(40);
        f.put('\x77');
    }

    core::Checkpoint got;
    EXPECT_FALSE(lib->fetch(makeKey(), got));

    auto rep = lib->verify();
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.corrupt, 1u);

    // gc sweeps the corrupt object; afterwards the library is clean
    // (and empty) again.
    const auto gc = lib->gc();
    EXPECT_EQ(gc.removedCorrupt, 1u);
    EXPECT_FALSE(std::filesystem::exists(obj));
    EXPECT_TRUE(lib->verify().clean());
    EXPECT_TRUE(lib->entries().empty());
}

TEST(CkptLibrary, TruncatedObjectIsAMiss)
{
    const std::string dir = freshDir("truncobj");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    lib->publish(makeKey(), makeSnapshot());

    const std::string obj = soleObjectPath(dir);
    const auto size = std::filesystem::file_size(obj);
    std::filesystem::resize_file(obj, size / 2);

    core::Checkpoint got;
    EXPECT_FALSE(lib->fetch(makeKey(), got));
    EXPECT_EQ(lib->verify().corrupt, 1u);
}

TEST(CkptLibrary, KilledWriterLeavesOnlySweptTemporaries)
{
    const std::string dir = freshDir("killed");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    lib->publish(makeKey(), makeSnapshot());

    // A writer killed before rename(2) leaves a ".tmp." file and
    // nothing else — published objects are never half-written.
    const std::string debris =
        dir + "/objects/deadbeef.vckpt.tmp.1234.0";
    std::ofstream(debris, std::ios::binary) << "partial";
    ASSERT_TRUE(std::filesystem::exists(debris));

    // The debris is invisible to fetch and verify...
    core::Checkpoint got;
    EXPECT_TRUE(lib->fetch(makeKey(), got));
    EXPECT_TRUE(lib->verify().clean());

    // ...and gc sweeps it.
    const auto gc = lib->gc();
    EXPECT_EQ(gc.removedTmp, 1u);
    EXPECT_FALSE(std::filesystem::exists(debris));
    EXPECT_TRUE(lib->fetch(makeKey(), got));
}

TEST(CkptLibrary, VerifyReportsVanishedObjects)
{
    const std::string dir = freshDir("vanished");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    lib->publish(makeKey(), makeSnapshot());
    std::filesystem::remove(soleObjectPath(dir));

    const auto rep = lib->verify();
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.missing, 1u);
}

TEST(CkptLibrary, GcEvictsOldestBeyondTheByteBudget)
{
    const std::string dir = freshDir("evict");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    lib->publish(makeKey(10), makeSnapshot(0x10));
    lib->publish(makeKey(20), makeSnapshot(0x20));
    lib->publish(makeKey(30), makeSnapshot(0x30));

    const auto entries = lib->entries();
    ASSERT_EQ(entries.size(), 3u);
    const std::uint64_t keepTwo =
        entries[1].bytes + entries[2].bytes;

    const auto gc = lib->gc(keepTwo);
    EXPECT_EQ(gc.evicted, 1u);
    EXPECT_LE(gc.bytesKept, keepTwo);

    // Oldest-published gone, newer two still served.
    core::Checkpoint got;
    EXPECT_FALSE(lib->fetch(makeKey(10), got));
    EXPECT_TRUE(lib->fetch(makeKey(20), got));
    EXPECT_TRUE(lib->fetch(makeKey(30), got));

    // The compacted index survives a reopen.
    auto again = ckpt::CheckpointLibrary::open(dir);
    EXPECT_EQ(again->entries().size(), 2u);
}

TEST(CkptLibrary, PinnedObjectsSurviveGcEviction)
{
    // The gc-vs-restore race: a warmer holds a digest it is about
    // to restore/publish while a byte-budget gc sweeps. The pin
    // must keep that object; eviction falls to the next-oldest.
    const std::string dir = freshDir("pin");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    lib->publish(makeKey(10), makeSnapshot(0x10));
    lib->publish(makeKey(20), makeSnapshot(0x20));
    lib->publish(makeKey(30), makeSnapshot(0x30));

    const auto entries = lib->entries();
    ASSERT_EQ(entries.size(), 3u);
    const std::string oldest = entries[0].digestHex;
    const std::uint64_t keepTwo =
        entries[1].bytes + entries[2].bytes;

    lib->pin(oldest);
    EXPECT_TRUE(lib->pinned(oldest));

    // Budget says evict one; the oldest is pinned, so the
    // second-oldest goes instead.
    const auto gc = lib->gc(keepTwo);
    EXPECT_EQ(gc.evicted, 1u);
    core::Checkpoint got;
    EXPECT_TRUE(lib->fetch(makeKey(10), got));
    EXPECT_FALSE(lib->fetch(makeKey(20), got));
    EXPECT_TRUE(lib->fetch(makeKey(30), got));

    // Pins nest: one unpin of a double pin still protects.
    lib->pin(oldest);
    lib->unpin(oldest);
    EXPECT_TRUE(lib->pinned(oldest));
    lib->unpin(oldest);
    EXPECT_FALSE(lib->pinned(oldest));

    // Fully unpinned, the object is evictable again.
    const auto gc2 = lib->gc(entries[2].bytes);
    EXPECT_EQ(gc2.evicted, 1u);
    EXPECT_FALSE(lib->fetch(makeKey(10), got));
    EXPECT_TRUE(lib->fetch(makeKey(30), got));
}

TEST(CkptLibrary, PinningUnknownDigestsIsHarmless)
{
    // Pinning a digest not (yet) in the index protects a
    // publication in flight; it must not be an error.
    const std::string dir = freshDir("pinunknown");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    lib->pin("feedfacefeedface");
    EXPECT_TRUE(lib->pinned("feedfacefeedface"));
    lib->unpin("feedfacefeedface");
    EXPECT_FALSE(lib->pinned("feedfacefeedface"));
}

TEST(CkptLibraryDeathTest, UnmatchedUnpinIsABug)
{
    const std::string dir = freshDir("unpinbug");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    EXPECT_DEATH(lib->unpin("neverpinned"), "matching pin");
}

TEST(CkptLibraryDeathTest, GcRefusesWhileAnotherHandleIsOpen)
{
    // Cross-process (and cross-handle) protection is the .lock
    // flock: gc needs it exclusively, so a sweep cannot run while
    // a daemon or campaign shard has the library open.
    const std::string dir = freshDir("gclock");
    auto a = ckpt::CheckpointLibrary::open(dir);
    a->publish(makeKey(), makeSnapshot());
    auto b = ckpt::CheckpointLibrary::open(dir);
    EXPECT_DEATH(a->gc(), "exclusive");
}

TEST(CkptLibrary, TornIndexTailIsIgnoredButObjectStillServes)
{
    const std::string dir = freshDir("tornindex");
    {
        auto lib = ckpt::CheckpointLibrary::open(dir);
        lib->publish(makeKey(), makeSnapshot());
    }
    // Simulate a crash mid-append: an unterminated half line.
    {
        std::ofstream f(dir + "/index.jsonl",
                        std::ios::binary | std::ios::app);
        f << "{\"digest\":\"0000";
    }
    auto lib = ckpt::CheckpointLibrary::open(dir);
    EXPECT_EQ(lib->entries().size(), 1u);
    core::Checkpoint got;
    EXPECT_TRUE(lib->fetch(makeKey(), got));
}

} // namespace
