/**
 * @file
 * The persistence contract, end to end: a simulation restored from a
 * disk archive must be bitwise indistinguishable from the simulation
 * that took the snapshot — same clock, same transaction count, and
 * (the strongest form) a byte-identical next snapshot — for every
 * workload family and both processor models. On top of that, the
 * campaign engine must produce bit-identical stores whether warm-up
 * state came from re-simulation or from the library, and shards must
 * only pay for the configurations their stripe touches.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "campaign/campaign.hh"
#include "ckpt/archive.hh"
#include "ckpt/library.hh"
#include "core/varsim.hh"

namespace
{

using namespace varsim;

std::string
freshDir(const std::string &name)
{
    const auto p = std::filesystem::temp_directory_path() /
                   ("varsim_test_ckptrt_" + name);
    std::filesystem::remove_all(p);
    std::filesystem::create_directories(p);
    return p.string();
}

/**
 * One round-trip case: run @p k transactions, snapshot, and compare
 * continuing against restoring. Scientific kernels complete after a
 * single transaction, so they snapshot at the boot boundary (k = 0)
 * and replay their whole program from it.
 */
struct RtCase
{
    workload::WorkloadKind kind;
    cpu::CpuConfig::Model model;
    std::uint64_t k;
};

class CkptRoundTrip : public ::testing::TestWithParam<RtCase>
{};

TEST_P(CkptRoundTrip, DiskRestoreEqualsContinuingBitwise)
{
    const RtCase &c = GetParam();
    core::SystemConfig sys = core::SystemConfig::testDefault();
    sys.mem.perturbMaxNs = 4;
    sys.cpu.model = c.model;
    workload::WorkloadParams wl;
    wl.kind = c.kind;
    wl.threadsPerCpu = 2;

    const std::uint64_t more = c.k ? c.k : 1;

    // Trajectory A: warm, snapshot, keep going in the same process.
    core::Simulation a(sys, wl);
    a.seedPerturbation(7);
    if (c.k)
        a.runTransactions(c.k);
    const core::Checkpoint cp = a.checkpoint();
    a.runTransactions(more);

    // Push the snapshot through the full disk path: archive bytes,
    // atomic publication, load, integrity checks.
    ckpt::CheckpointKey key;
    key.sys = sys;
    key.wl = wl;
    key.warmupSeed = 7;
    key.position = c.k;

    ckpt::ArchiveMeta meta;
    meta.keyCanonical = key.canonical();
    meta.digest = key.digest();
    meta.position = c.k;
    meta.warmupSeed = 7;

    const std::string dir = freshDir(
        std::string(workload::kindName(c.kind)) +
        (c.model == cpu::CpuConfig::Model::Simple ? "_simple"
                                                  : "_ooo"));
    std::string err;
    ASSERT_TRUE(ckpt::writeFileAtomic(
        dir, key.digestHex() + ".vckpt",
        ckpt::buildArchive(meta, cp.bytes), &err))
        << err;
    const auto loaded =
        ckpt::loadArchiveFile(dir + "/" + key.digestHex() +
                              ".vckpt");
    ASSERT_TRUE(loaded.ok) << loaded.error;
    ASSERT_EQ(loaded.payload, cp.bytes)
        << "disk round trip changed the snapshot";

    // Trajectory B: restore from the disk bytes, run the same tail.
    core::Checkpoint fromDisk;
    fromDisk.bytes = loaded.payload;
    auto b = core::Simulation::restore(sys, wl, fromDisk);
    EXPECT_EQ(b->totalTxns(), c.k);
    b->runTransactions(more);

    EXPECT_EQ(a.now(), b->now());
    EXPECT_EQ(a.totalTxns(), b->totalTxns());

    // Strongest equivalence: the *entire* simulator state agrees,
    // byte for byte, after both tails.
    EXPECT_EQ(a.checkpoint().bytes, b->checkpoint().bytes)
        << "restored state diverged from the original";
}

const RtCase rtCases[] = {
    {workload::WorkloadKind::Oltp, cpu::CpuConfig::Model::Simple,
     15},
    {workload::WorkloadKind::Oltp, cpu::CpuConfig::Model::OutOfOrder,
     15},
    {workload::WorkloadKind::Apache, cpu::CpuConfig::Model::Simple,
     15},
    {workload::WorkloadKind::Apache,
     cpu::CpuConfig::Model::OutOfOrder, 15},
    {workload::WorkloadKind::SpecJbb, cpu::CpuConfig::Model::Simple,
     15},
    {workload::WorkloadKind::SpecJbb,
     cpu::CpuConfig::Model::OutOfOrder, 15},
    {workload::WorkloadKind::Slashcode,
     cpu::CpuConfig::Model::Simple, 15},
    {workload::WorkloadKind::Slashcode,
     cpu::CpuConfig::Model::OutOfOrder, 15},
    {workload::WorkloadKind::EcPerf, cpu::CpuConfig::Model::Simple,
     15},
    {workload::WorkloadKind::EcPerf,
     cpu::CpuConfig::Model::OutOfOrder, 15},
    {workload::WorkloadKind::Barnes, cpu::CpuConfig::Model::Simple,
     0},
    {workload::WorkloadKind::Barnes,
     cpu::CpuConfig::Model::OutOfOrder, 0},
    {workload::WorkloadKind::Ocean, cpu::CpuConfig::Model::Simple,
     0},
    {workload::WorkloadKind::Ocean,
     cpu::CpuConfig::Model::OutOfOrder, 0},
};

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, CkptRoundTrip, ::testing::ValuesIn(rtCases),
    [](const ::testing::TestParamInfo<RtCase> &info) {
        return std::string(workload::kindName(info.param.kind)) +
               (info.param.model == cpu::CpuConfig::Model::Simple
                    ? "_Simple"
                    : "_OutOfOrder");
    });

// The measured-run view of the same contract: every metric of a run
// started from a disk-round-tripped snapshot equals the in-memory
// run's, down to the last bit of the doubles (%.17g-exact).
TEST(CkptRoundTrip, MeasuredMetricsAreBitwiseEqualFromDisk)
{
    core::SystemConfig sys = core::SystemConfig::testDefault();
    sys.mem.perturbMaxNs = 4;
    workload::WorkloadParams wl;
    wl.kind = workload::WorkloadKind::Oltp;
    wl.threadsPerCpu = 2;

    core::Simulation warmer(sys, wl);
    warmer.seedPerturbation(7);
    warmer.runTransactions(10);
    const core::Checkpoint cp = warmer.checkpoint();

    const std::string dir = freshDir("metrics");
    auto lib = ckpt::CheckpointLibrary::open(dir);
    ckpt::CheckpointKey key;
    key.sys = sys;
    key.wl = wl;
    key.warmupSeed = 7;
    key.position = 10;
    ASSERT_TRUE(lib->publish(key, cp));
    core::Checkpoint fromDisk;
    ASSERT_TRUE(lib->fetch(key, fromDisk));

    core::RunConfig rc;
    rc.measureTxns = 30;
    rc.perturbSeed = 99;
    rc.windowTxns = 10;
    const auto mem = core::runFromCheckpoint(sys, wl, cp, rc);
    const auto disk =
        core::runFromCheckpoint(sys, wl, fromDisk, rc);

    EXPECT_EQ(mem.cyclesPerTxn, disk.cyclesPerTxn);
    EXPECT_EQ(mem.runtimeTicks, disk.runtimeTicks);
    EXPECT_EQ(mem.txns, disk.txns);
    EXPECT_EQ(mem.windows, disk.windows);
    EXPECT_EQ(mem.mem.l2Misses, disk.mem.l2Misses);
    EXPECT_EQ(mem.os.dispatches, disk.os.dispatches);
    EXPECT_EQ(mem.cpu.instructions, disk.cpu.instructions);
    EXPECT_EQ(sim::format("%.17g", mem.cyclesPerTxn),
              sim::format("%.17g", disk.cyclesPerTxn));
}

// ---------------------------------------------------------------
// Campaign integration.

campaign::CampaignSpec
ckptSpec()
{
    campaign::CampaignSpec spec;
    core::SystemConfig sysA = core::SystemConfig::testDefault();
    sysA.mem.perturbMaxNs = 4;
    core::SystemConfig sysB = sysA;
    sysB.mem.l2Assoc *= 2;
    spec.configs = {{"assoc-lo", sysA}, {"assoc-hi", sysB}};
    spec.wl.kind = workload::WorkloadKind::Oltp;
    spec.wl.threadsPerCpu = 2;
    spec.run.warmupTxns = 5;
    spec.run.measureTxns = 20;
    spec.baseSeed = 11;
    spec.stop.fixedRuns = 3;
    spec.numCheckpoints = 2;
    spec.checkpointStep = 15;
    return spec;
}

std::vector<std::vector<double>>
allMetrics(const std::string &dir,
           const campaign::CampaignSpec &spec)
{
    auto store = campaign::ResultStore::open(dir);
    std::vector<std::vector<double>> out;
    for (std::size_t g = 0; g < spec.numGroups(); ++g)
        out.push_back(store->groupMetric(g));
    return out;
}

TEST(CkptCampaign, LibraryBackedCampaignIsBitIdentical)
{
    const auto spec = ckptSpec();

    // Baseline: classic in-memory warm-up.
    const std::string plain = freshDir("camp-plain");
    const auto base = campaign::runCampaign(spec, plain);
    ASSERT_TRUE(base.complete);
    EXPECT_EQ(base.checkpointsRestored, 0u);
    EXPECT_EQ(base.checkpointsWarmed, 4u); // 2 configs x 2 positions

    // First library-backed campaign: all misses, publishes 4.
    const std::string libDir = freshDir("camp-lib");
    campaign::CampaignOptions opt;
    opt.ckptDir = libDir;
    const std::string first = freshDir("camp-first");
    const auto miss = campaign::runCampaign(spec, first, opt);
    ASSERT_TRUE(miss.complete);
    EXPECT_EQ(miss.checkpointsRestored, 0u);
    EXPECT_EQ(miss.checkpointsWarmed, 4u);

    // Second campaign against the now-warm library: all hits.
    const std::string second = freshDir("camp-second");
    const auto hit = campaign::runCampaign(spec, second, opt);
    ASSERT_TRUE(hit.complete);
    EXPECT_EQ(hit.checkpointsRestored, 4u);
    EXPECT_EQ(hit.checkpointsWarmed, 0u);

    // All three stores hold bit-identical metrics: the library is
    // invisible to results.
    EXPECT_EQ(allMetrics(plain, spec), allMetrics(first, spec));
    EXPECT_EQ(allMetrics(plain, spec), allMetrics(second, spec));

    // The library itself verifies clean.
    auto lib = ckpt::CheckpointLibrary::open(libDir);
    EXPECT_EQ(lib->entries().size(), 4u);
    EXPECT_TRUE(lib->verify().clean());
}

TEST(CkptCampaign, PrewarmThenRunRestoresEverything)
{
    const auto spec = ckptSpec();
    campaign::CampaignOptions opt;
    opt.ckptDir = freshDir("prewarm-lib");

    // `varsim ckpt create`: build the full grid up front...
    const auto w1 = campaign::warmCampaignCheckpoints(spec, opt);
    EXPECT_EQ(w1.warmed, 4u);
    EXPECT_EQ(w1.restored, 0u);
    EXPECT_EQ(w1.libraryEntries, 4u);
    EXPECT_GT(w1.libraryBytes, 0u);

    // ...idempotently: a second create restores instead of warming.
    const auto w2 = campaign::warmCampaignCheckpoints(spec, opt);
    EXPECT_EQ(w2.warmed, 0u);
    EXPECT_EQ(w2.restored, 4u);
    EXPECT_EQ(w2.libraryEntries, 4u);

    // The measuring campaign never re-simulates a warm-up, and its
    // store records the library traffic for `campaign status`.
    const std::string dir = freshDir("prewarm-camp");
    const auto outcome = campaign::runCampaign(spec, dir, opt);
    ASSERT_TRUE(outcome.complete);
    EXPECT_EQ(outcome.checkpointsRestored, 4u);
    EXPECT_EQ(outcome.checkpointsWarmed, 0u);

    const auto st = campaign::campaignStatus(dir);
    ASSERT_TRUE(st.ckpt.valid);
    EXPECT_EQ(st.ckpt.restored, 4u);
    EXPECT_EQ(st.ckpt.warmed, 0u);
    EXPECT_EQ(st.ckpt.entries, 4u);
    EXPECT_NE(st.toString().find("checkpoint library"),
              std::string::npos);

    // The report notes the library without embedding counts (a
    // resumed campaign must report byte-identically).
    const auto rep = campaign::campaignReport(dir);
    EXPECT_NE(rep.text.find("served from library"),
              std::string::npos);
}

TEST(CkptCampaign, ShardOnlyWarmsConfigsItsStripeTouches)
{
    auto spec = ckptSpec();
    spec.stop.fixedRuns = 2;
    spec.stop.maxRuns = 2; // cell stride 2: ids 0..7 over 4 groups

    // Shard 8/8 owns only cell id 7 = (group 3, run 1); group 3 is
    // config 1, so config 0's warm-up must not be paid.
    campaign::CampaignOptions opt;
    opt.shardIndex = 7;
    opt.shardCount = 8;
    const std::string dir = freshDir("shard-one");
    const auto one = campaign::runCampaign(spec, dir, opt);
    EXPECT_EQ(one.runsExecuted, 1u);
    EXPECT_EQ(one.checkpointsWarmed, 2u)
        << "a shard warmed a configuration it never measures";
    EXPECT_EQ(one.checkpointsRestored, 0u);

    // A stripe that owns no cells warms nothing at all.
    campaign::CampaignOptions idle;
    idle.shardIndex = 15;
    idle.shardCount = 16;
    const std::string dir2 = freshDir("shard-idle");
    const auto none = campaign::runCampaign(spec, dir2, idle);
    EXPECT_EQ(none.runsExecuted, 0u);
    EXPECT_EQ(none.checkpointsWarmed, 0u);
    EXPECT_EQ(none.checkpointsRestored, 0u);
}

TEST(CkptCampaign, CompletedCampaignRerunWarmsNothing)
{
    const auto spec = ckptSpec();
    const std::string dir = freshDir("rerun");
    const auto first = campaign::runCampaign(spec, dir);
    ASSERT_TRUE(first.complete);
    EXPECT_EQ(first.checkpointsWarmed, 4u);

    // Nothing left to run, so no warm-up happens either — warming
    // is lazy on the cells actually scheduled.
    const auto again = campaign::runCampaign(spec, dir);
    ASSERT_TRUE(again.complete);
    EXPECT_EQ(again.runsExecuted, 0u);
    EXPECT_EQ(again.checkpointsWarmed, 0u);
    EXPECT_EQ(again.checkpointsRestored, 0u);
}

} // namespace
