/**
 * @file
 * Archive-format tests: the on-disk checkpoint container must reject
 * every truncation and every bit flip with a description — never
 * misdeserialize, never abort — and atomic publication must leave
 * either the whole file or nothing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "ckpt/archive.hh"
#include "ckpt/key.hh"

namespace
{

using namespace varsim;

ckpt::ArchiveMeta
sampleMeta()
{
    ckpt::ArchiveMeta meta;
    meta.keyCanonical = "nodes=4;block=64;wl=OLTP;pos=15;";
    // The parser cross-checks this against the key string.
    meta.digest =
        ckpt::fnv1a64(ckpt::kFnvOffsetBasis, meta.keyCanonical);
    meta.position = 15;
    meta.warmupSeed = 42;
    return meta;
}

std::vector<std::uint8_t>
samplePayload()
{
    std::vector<std::uint8_t> p;
    for (int i = 0; i < 64; ++i)
        p.push_back(static_cast<std::uint8_t>(i * 7 + 3));
    return p;
}

std::string
scratchDir(const std::string &name)
{
    const auto p = std::filesystem::temp_directory_path() /
                   ("varsim_test_archive_" + name);
    std::filesystem::remove_all(p);
    std::filesystem::create_directories(p);
    return p.string();
}

TEST(CkptArchive, RoundTripPreservesMetaAndPayload)
{
    const auto meta = sampleMeta();
    const auto payload = samplePayload();
    const auto bytes = ckpt::buildArchive(meta, payload);

    const auto r = ckpt::parseArchive(bytes);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.meta.keyCanonical, meta.keyCanonical);
    EXPECT_EQ(r.meta.digest, meta.digest);
    EXPECT_EQ(r.meta.position, meta.position);
    EXPECT_EQ(r.meta.warmupSeed, meta.warmupSeed);
    EXPECT_EQ(r.payload, payload);
}

TEST(CkptArchive, ArchiveBytesAreDeterministic)
{
    // Byte-identical archives are what make the publication race
    // between shards benign.
    const auto a = ckpt::buildArchive(sampleMeta(), samplePayload());
    const auto b = ckpt::buildArchive(sampleMeta(), samplePayload());
    EXPECT_EQ(a, b);
}

TEST(CkptArchive, TruncationAtEveryLengthIsRejected)
{
    const auto bytes =
        ckpt::buildArchive(sampleMeta(), samplePayload());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() + len);
        const auto r = ckpt::parseArchive(cut);
        EXPECT_FALSE(r.ok) << "truncation to " << len
                           << " bytes parsed as valid";
        EXPECT_FALSE(r.error.empty());
    }
}

TEST(CkptArchive, EveryBitFlipIsRejected)
{
    // The trailing checksum covers every preceding byte and is
    // itself part of the match, so no single corrupt byte anywhere
    // in the file may survive parsing.
    const auto bytes =
        ckpt::buildArchive(sampleMeta(), samplePayload());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        auto bad = bytes;
        bad[i] ^= 0x40;
        const auto r = ckpt::parseArchive(bad);
        EXPECT_FALSE(r.ok)
            << "flip at byte " << i << " parsed as valid";
    }
}

TEST(CkptArchive, TrailingGarbageIsRejected)
{
    auto bytes = ckpt::buildArchive(sampleMeta(), samplePayload());
    bytes.push_back(0);
    EXPECT_FALSE(ckpt::parseArchive(bytes).ok);
}

TEST(CkptArchive, WrongMagicAndVersionAreDescribed)
{
    auto bytes = ckpt::buildArchive(sampleMeta(), samplePayload());
    {
        auto bad = bytes;
        bad[0] = 'X';
        const auto r = ckpt::parseArchive(bad);
        ASSERT_FALSE(r.ok);
        EXPECT_NE(r.error.find("magic"), std::string::npos)
            << r.error;
    }
    {
        auto bad = bytes;
        bad[8] = 0x7f; // version field
        // Fix up the checksum so the version check is what fires.
        // (Cheaper: just assert it fails for *some* reason.)
        const auto r = ckpt::parseArchive(bad);
        EXPECT_FALSE(r.ok);
    }
}

TEST(CkptArchive, AtomicWriteThenLoadRoundTrips)
{
    const std::string dir = scratchDir("atomic");
    const auto bytes =
        ckpt::buildArchive(sampleMeta(), samplePayload());

    std::string err;
    ASSERT_TRUE(ckpt::writeFileAtomic(dir, "obj.vckpt", bytes, &err))
        << err;

    // No temporary debris after a successful publication.
    for (const auto &e : std::filesystem::directory_iterator(dir))
        EXPECT_EQ(e.path().filename().string(), "obj.vckpt");

    const auto r = ckpt::loadArchiveFile(dir + "/obj.vckpt");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.payload, samplePayload());
}

TEST(CkptArchive, MissingFileIsAnErrorNamingThePath)
{
    const auto r = ckpt::loadArchiveFile("/nonexistent/no.vckpt");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("no.vckpt"), std::string::npos)
        << r.error;
}

TEST(CkptArchive, TruncatedFileOnDiskIsRejected)
{
    const std::string dir = scratchDir("truncfile");
    const auto bytes =
        ckpt::buildArchive(sampleMeta(), samplePayload());

    // A file cut mid-payload — what a powered-off non-atomic writer
    // would have left — must be rejected on load.
    std::ofstream out(dir + "/cut.vckpt", std::ios::binary);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();

    const auto r = ckpt::loadArchiveFile(dir + "/cut.vckpt");
    EXPECT_FALSE(r.ok);
}

TEST(CkptArchive, EmptyPayloadRoundTrips)
{
    const auto bytes = ckpt::buildArchive(sampleMeta(), {});
    const auto r = ckpt::parseArchive(bytes);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.payload.empty());
}

} // namespace
