/** @file Unit tests for the TFsim-style predictors (Section 3.2.4). */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

namespace varsim
{
namespace cpu
{
namespace
{

TEST(Yags, LearnsAlwaysTaken)
{
    YagsPredictor p;
    const sim::Addr pc = 0x1000;
    for (int i = 0; i < 8; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
}

TEST(Yags, LearnsAlwaysNotTaken)
{
    YagsPredictor p;
    const sim::Addr pc = 0x1000;
    for (int i = 0; i < 8; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predict(pc));
}

TEST(Yags, LearnsLoopPattern)
{
    // Taken 7 times then not-taken once, repeated: with 8 bits of
    // history the exit is distinguishable.
    YagsPredictor p;
    const sim::Addr pc = 0x2000;
    int correct = 0, total = 0;
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 8; ++i) {
            const bool taken = i != 7;
            if (round >= 100) {
                ++total;
                correct += p.predict(pc) == taken;
            }
            p.update(pc, taken);
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(Yags, IndependentBranchesDoNotDestroyEachOther)
{
    YagsPredictor p;
    for (int i = 0; i < 64; ++i) {
        p.update(0x1000, true);
        p.update(0x5008, false);
    }
    EXPECT_TRUE(p.predict(0x1000));
    EXPECT_FALSE(p.predict(0x5008));
}

TEST(Yags, AccuracyCounters)
{
    YagsPredictor p;
    p.recordOutcome(true);
    p.recordOutcome(false);
    p.recordOutcome(true);
    EXPECT_EQ(p.lookups(), 3u);
    EXPECT_EQ(p.correct(), 2u);
}

TEST(Yags, SerializeRoundTrip)
{
    YagsPredictor a;
    for (int i = 0; i < 100; ++i)
        a.update(0x1000 + (i % 7) * 4, i % 3 != 0);

    sim::CheckpointOut out;
    a.serialize(out);
    YagsPredictor b;
    sim::CheckpointIn in(out.bytes());
    b.unserialize(in);

    for (int i = 0; i < 7; ++i) {
        const sim::Addr pc = 0x1000 + i * 4;
        EXPECT_EQ(a.predict(pc), b.predict(pc));
    }
}

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u) << "empty stack predicts 0";
}

TEST(Ras, OverflowWrapsLikeHardware)
{
    ReturnAddressStack ras(4);
    for (sim::Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // Entries 1 and 2 were overwritten.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.depth(), 0u);
}

TEST(Ras, SerializeRoundTrip)
{
    ReturnAddressStack a(16);
    a.push(0x111);
    a.push(0x222);
    sim::CheckpointOut out;
    a.serialize(out);
    ReturnAddressStack b(16);
    sim::CheckpointIn in(out.bytes());
    b.unserialize(in);
    EXPECT_EQ(b.pop(), 0x222u);
    EXPECT_EQ(b.pop(), 0x111u);
}

TEST(Indirect, LearnsStableTarget)
{
    IndirectPredictor p;
    p.update(0x4000, 0x9000);
    EXPECT_EQ(p.predict(0x4000), 0x9000u);
}

TEST(Indirect, ColdMissPredictsZero)
{
    IndirectPredictor p;
    EXPECT_EQ(p.predict(0x4000), 0u);
}

TEST(Indirect, RetrainsOnNewTarget)
{
    IndirectPredictor p;
    p.update(0x4000, 0x9000);
    p.update(0x4000, 0xa000);
    // History changed after the first update, so the new entry may
    // land elsewhere; we only require that *some* recent mapping is
    // recoverable after a stable sequence.
    for (int i = 0; i < 4; ++i)
        p.update(0x4000, 0xa000);
    // Probe: with the current history the prediction should be the
    // stable target (or a cold 0 at worst, never the stale target
    // under matching history).
    const sim::Addr pred = p.predict(0x4000);
    EXPECT_TRUE(pred == 0xa000u || pred == 0u);
}

TEST(Indirect, SerializeRoundTrip)
{
    IndirectPredictor a;
    a.update(0x4000, 0x9000);
    sim::CheckpointOut out;
    a.serialize(out);
    IndirectPredictor b;
    sim::CheckpointIn in(out.bytes());
    b.unserialize(in);
    EXPECT_EQ(b.predict(0x4000), a.predict(0x4000));
}

} // namespace
} // namespace cpu
} // namespace varsim
