/**
 * @file
 * Tests of the two processor models against the real memory system,
 * using scripted op streams and a scripted host:
 *  - SimpleCpu is IPC 1 given warm L1s and stalls fully on misses;
 *  - OoOCpu overlaps independent misses (MLP) bounded by its ROB,
 *    the knob of the paper's Experiment 2.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "mem/mem_system.hh"

namespace varsim
{
namespace cpu
{
namespace
{

/** A fixed op script. */
class ScriptStream : public OpStream
{
  public:
    explicit ScriptStream(std::vector<Op> ops) : ops_(std::move(ops))
    {}

    const Op &
    current() override
    {
        return ops_.at(pos);
    }

    void advance() override { ++pos; }

    void
    serialize(sim::CheckpointOut &cp) const override
    {
        cp.put<std::uint64_t>(pos);
    }

    void
    unserialize(sim::CheckpointIn &cp) override
    {
        std::uint64_t p = 0;
        cp.get(p);
        pos = static_cast<std::size_t>(p);
    }

  private:
    std::vector<Op> ops_;
    std::size_t pos = 0;
};

class TestThread : public ThreadContext
{
  public:
    TestThread(std::vector<Op> ops, sim::Addr code_base)
        : stream_(std::move(ops))
    {
        fetch_.codeBase = code_base;
        fetch_.codeBlocks = 64;
    }

    OpStream &stream() override { return stream_; }
    FetchState &fetchState() override { return fetch_; }
    sim::ThreadId tid() const override { return 0; }

  private:
    ScriptStream stream_;
    FetchState fetch_;
};

/**
 * Host that advances TxnEnd/Yield ops and idles the CPU on End,
 * recording the tick of every syscall.
 */
class TestHost : public CpuHost
{
  public:
    explicit TestHost(sim::EventQueue &q) : eq(&q) {}

    void
    syscall(BaseCpu &cpu, ThreadContext &tc, const Op &op) override
    {
        syscalls.emplace_back(op.kind, eq->curTick());
        switch (op.kind) {
          case OpKind::TxnEnd:
          case OpKind::Yield:
            tc.stream().advance();
            cpu.continueThread(0);
            return;
          case OpKind::End:
            cpu.setIdle();
            return;
          default:
            FAIL() << "unexpected syscall kind";
        }
    }

    void preempted(BaseCpu &cpu) override
    {
        ++preempts;
        cpu.continueThread(0);
    }

    void drained(BaseCpu &) override { ++drains; }
    bool draining() const override { return draining_; }

    /** Tick of the n-th syscall of `kind`, relative to `epoch`. */
    sim::Tick
    tickOf(OpKind kind, std::size_t occurrence = 0) const
    {
        std::size_t seen = 0;
        for (const auto &[k, t] : syscalls) {
            if (k == kind && seen++ == occurrence)
                return t - epoch;
        }
        return sim::maxTick;
    }

    sim::Tick epoch = 0;

    sim::EventQueue *eq;
    std::vector<std::pair<OpKind, sim::Tick>> syscalls;
    int preempts = 0;
    int drains = 0;
    bool draining_ = false;
};

mem::MemConfig
memCfg()
{
    mem::MemConfig c;
    c.numNodes = 2;
    c.l1Size = 8 * 1024;
    c.l2Size = 64 * 1024;
    c.perturbMaxNs = 0;
    return c;
}

class CpuTest : public ::testing::Test
{
  protected:
    void
    buildSimple()
    {
        ms = std::make_unique<mem::MemSystem>("mem", eq, memCfg());
        host = std::make_unique<TestHost>(eq);
        cfg = CpuConfig{};
        cpu0 = std::make_unique<SimpleCpu>("cpu0", eq, cfg,
                                           ms->icache(0),
                                           ms->dcache(0), 0);
        cpu0->setHost(host.get());
    }

    void
    buildOoO(std::uint32_t rob)
    {
        ms = std::make_unique<mem::MemSystem>("mem", eq, memCfg());
        host = std::make_unique<TestHost>(eq);
        cfg = CpuConfig{};
        cfg.model = CpuConfig::Model::OutOfOrder;
        cfg.robEntries = rob;
        cfg.issueIpc = 2;
        cpu0 = std::make_unique<OoOCpu>("cpu0", eq, cfg,
                                        ms->icache(0),
                                        ms->dcache(0), 0);
        cpu0->setHost(host.get());
    }

    /** Pre-fill the icache for the standard code footprint. */
    void
    warmCode(sim::Addr code_base)
    {
        struct Sink : mem::MemClient
        {
            void memResponse(std::uint64_t) override {}
        } sink;
        auto *old = &sink;
        (void)old;
        ms->icache(0).setClient(&sink);
        for (int b = 0; b < 64; ++b) {
            const sim::Addr a = code_base + b * 64;
            if (!ms->icache(0).tryAccess(a, false)) {
                ms->icache(0).access({a, false, true, 900u + b});
                eq.run();
            }
        }
        ms->icache(0).setClient(cpu0.get());
    }

    void
    warmData(sim::Addr addr, bool write = false)
    {
        struct Sink : mem::MemClient
        {
            void memResponse(std::uint64_t) override {}
        } sink;
        ms->dcache(0).setClient(&sink);
        if (!ms->dcache(0).tryAccess(addr, write)) {
            ms->dcache(0).access({addr, write, false, 999});
            eq.run();
        }
        ms->dcache(0).setClient(cpu0.get());
    }

    sim::EventQueue eq;
    CpuConfig cfg;
    std::unique_ptr<mem::MemSystem> ms;
    std::unique_ptr<TestHost> host;
    std::unique_ptr<BaseCpu> cpu0;
};

constexpr sim::Addr kCode = 0x100000;

TEST_F(CpuTest, SimpleComputeIsIpcOneWhenWarm)
{
    buildSimple();
    warmCode(kCode);
    TestThread t({{OpKind::Compute, 500, 0, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::Compute, 300, 0, 0},
                  {OpKind::TxnEnd, 0, 0, 1},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    EXPECT_EQ(host->tickOf(OpKind::TxnEnd, 0), 500u);
    EXPECT_EQ(host->tickOf(OpKind::TxnEnd, 1), 800u);
    EXPECT_EQ(cpu0->stats().instructions, 800u);
}

TEST_F(CpuTest, SimpleColdFetchStalls)
{
    buildSimple();
    TestThread t({{OpKind::Compute, 32, 0, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    // 32 instructions = 2 code blocks, each a 192-tick cold miss.
    EXPECT_EQ(host->tickOf(OpKind::TxnEnd), 32u + 2 * 192u);
}

TEST_F(CpuTest, SimpleLoadHitCostsOneCycle)
{
    buildSimple();
    warmCode(kCode);
    warmData(0x9000);
    TestThread t({{OpKind::Load, 0, 0x9000, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    EXPECT_EQ(host->tickOf(OpKind::TxnEnd), 1u);
}

TEST_F(CpuTest, SimpleLoadMissStallsFully)
{
    buildSimple();
    warmCode(kCode);
    TestThread t({{OpKind::Load, 0, 0x9000, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    // 1 instruction + 192 cold miss.
    EXPECT_EQ(host->tickOf(OpKind::TxnEnd), 193u);
}

TEST_F(CpuTest, SimpleTwoMissesSerialize)
{
    buildSimple();
    warmCode(kCode);
    TestThread t({{OpKind::Load, 0, 0x9000, 0},
                  {OpKind::Load, 0, 0xa000, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    EXPECT_EQ(host->tickOf(OpKind::TxnEnd), 2u * 193u);
}

TEST_F(CpuTest, SimplePreemptHonoredAtOpBoundary)
{
    buildSimple();
    warmCode(kCode);
    TestThread t({{OpKind::Compute, 100, 0, 0},
                  {OpKind::Compute, 100, 0, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    cpu0->requestPreempt();
    eq.run();
    EXPECT_EQ(host->preempts, 1);
    EXPECT_EQ(host->tickOf(OpKind::End), 200u);
}

TEST_F(CpuTest, SimpleDrainParksAtOpBoundary)
{
    buildSimple();
    warmCode(kCode);
    TestThread t({{OpKind::Compute, 100, 0, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    host->draining_ = true;
    eq.run();
    EXPECT_EQ(host->drains, 1);
    EXPECT_EQ(host->syscalls.size(), 0u) << "parked before TxnEnd";
    host->draining_ = false;
    cpu0->resumeFromDrain();
    eq.run();
    EXPECT_EQ(host->tickOf(OpKind::End), 100u);
}

TEST_F(CpuTest, OoOOverlapsIndependentMisses)
{
    buildOoO(64);
    warmCode(kCode);
    TestThread t({{OpKind::Load, 0, 0x9000, 0},
                  {OpKind::Load, 0, 0xa000, 0},
                  {OpKind::Load, 0, 0xb000, 0},
                  {OpKind::Load, 0, 0xc000, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    const sim::Tick t1 = host->tickOf(OpKind::TxnEnd);
    // Four independent misses overlap: far less than 4 x 192.
    EXPECT_LT(t1, 300u);
    EXPECT_GE(t1, 192u);
}

TEST_F(CpuTest, OoORobBoundsOverlap)
{
    // With a huge spacer between loads relative to the ROB, the
    // second load cannot enter the window until the first retires.
    auto timeWithRob = [](std::uint32_t rob) {
        sim::EventQueue eq;
        auto ms = std::make_unique<mem::MemSystem>("mem", eq,
                                                   memCfg());
        TestHost host(eq);
        CpuConfig cfg;
        cfg.model = CpuConfig::Model::OutOfOrder;
        cfg.robEntries = rob;
        OoOCpu cpu0("cpu0", eq, cfg, ms->icache(0), ms->dcache(0),
                    0);
        cpu0.setHost(&host);
        // Warm the code footprint.
        struct Sink : mem::MemClient
        {
            void memResponse(std::uint64_t) override {}
        } sink;
        ms->icache(0).setClient(&sink);
        for (int b = 0; b < 64; ++b) {
            const sim::Addr a = kCode + b * 64;
            if (!ms->icache(0).tryAccess(a, false)) {
                ms->icache(0).access({a, false, true, 900u + b});
                eq.run();
            }
        }
        ms->icache(0).setClient(&cpu0);
        std::vector<Op> ops;
        ops.push_back({OpKind::Load, 0, 0x9000, 0});
        ops.push_back({OpKind::Compute, 100, 0, 0});
        ops.push_back({OpKind::Load, 0, 0xa000, 0});
        ops.push_back({OpKind::TxnEnd, 0, 0, 0});
        ops.push_back({OpKind::End, 0, 0, 0});
        TestThread t(ops, kCode);
        host.epoch = eq.curTick();
        cpu0.runThread(&t, 0);
        eq.run();
        return host.tickOf(OpKind::TxnEnd);
    };
    const sim::Tick small = timeWithRob(16);
    const sim::Tick large = timeWithRob(256);
    // ROB 16 serializes (the 100-instruction spacer exceeds the
    // window); ROB 256 overlaps the two misses.
    EXPECT_GT(small, large + 100);
}

TEST_F(CpuTest, OoOComputeUsesIssueIpc)
{
    buildOoO(64);
    warmCode(kCode);
    TestThread t({{OpKind::Compute, 1000, 0, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    EXPECT_EQ(host->tickOf(OpKind::TxnEnd), 500u); // IPC 2
}

TEST_F(CpuTest, OoOMispredictChargesPenalty)
{
    buildOoO(64);
    warmCode(kCode);
    // Unpredictable-by-construction pattern: the predictor cannot be
    // right every time; each Branch costs a dispatch slot plus
    // penalty on error.
    std::vector<Op> ops;
    for (int i = 0; i < 64; ++i) {
        ops.push_back({OpKind::Branch, 0, kCode + 0x40,
                       (i * 7 + i * i) % 3 == 0});
    }
    ops.push_back({OpKind::TxnEnd, 0, 0, 0});
    ops.push_back({OpKind::End, 0, 0, 0});
    TestThread t(ops, kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    EXPECT_GT(cpu0->stats().mispredicts, 0u);
    EXPECT_EQ(cpu0->stats().branches, 64u);
    EXPECT_GE(host->tickOf(OpKind::TxnEnd),
              cpu0->stats().mispredicts * cfg.mispredictPenalty);
}

TEST_F(CpuTest, OoORasPredictsMatchedCalls)
{
    buildOoO(64);
    warmCode(kCode);
    std::vector<Op> ops;
    for (int i = 0; i < 16; ++i) {
        ops.push_back({OpKind::Call, 0x5000u + i, 0, 0});
        ops.push_back({OpKind::Return, 0x5000u + i, 0, 0});
    }
    ops.push_back({OpKind::TxnEnd, 0, 0, 0});
    ops.push_back({OpKind::End, 0, 0, 0});
    TestThread t(ops, kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    EXPECT_EQ(cpu0->stats().mispredicts, 0u)
        << "balanced call/return must be perfectly predicted";
}

TEST_F(CpuTest, OoODrainWaitsForOutstandingMisses)
{
    buildOoO(64);
    warmCode(kCode);
    TestThread t({{OpKind::Load, 0, 0x9000, 0},
                  {OpKind::Compute, 10, 0, 0},
                  {OpKind::TxnEnd, 0, 0, 0},
                  {OpKind::End, 0, 0, 0}},
                 kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    host->draining_ = true;
    eq.run();
    EXPECT_EQ(host->drains, 1);
    EXPECT_EQ(ms->pendingTransactions(), 0u)
        << "drain must complete outstanding misses";
}

TEST_F(CpuTest, StatsCountContextSwitches)
{
    buildSimple();
    warmCode(kCode);
    TestThread t({{OpKind::End, 0, 0, 0}}, kCode);
    host->epoch = eq.curTick();
    cpu0->runThread(&t, 0);
    eq.run();
    EXPECT_EQ(cpu0->stats().contextSwitches, 1u);
    EXPECT_TRUE(cpu0->isIdle());
}

} // namespace
} // namespace cpu
} // namespace varsim
