/** @file Unit tests for descriptive statistics. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hh"

namespace varsim
{
namespace stats
{
namespace
{

TEST(RunningStat, BasicMoments)
{
    RunningStat rs;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        rs.add(x);
    EXPECT_EQ(rs.count(), 8u);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(rs.min(), 2.0);
    EXPECT_EQ(rs.max(), 9.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.mean(), 0.0);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, SingleObservation)
{
    RunningStat rs;
    rs.add(3.5);
    EXPECT_EQ(rs.mean(), 3.5);
    EXPECT_EQ(rs.variance(), 0.0);
    EXPECT_EQ(rs.min(), 3.5);
    EXPECT_EQ(rs.max(), 3.5);
}

TEST(RunningStat, MergeMatchesCombinedStream)
{
    RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.37 * i * i - 3.0 * i + 1.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(b);
    EXPECT_EQ(a.mean(), mean);
    b.merge(a);
    EXPECT_EQ(b.mean(), mean);
}

TEST(Summary, PaperMetrics)
{
    // Coefficient of variation: "100 times the ratio of the standard
    // deviation to the mean" (Section 3.3); range of variability:
    // "(max - min) as a percentage of the mean" (Section 4.2).
    const std::vector<double> xs = {90, 100, 110};
    const Summary s = summarize(xs);
    EXPECT_DOUBLE_EQ(s.mean, 100.0);
    EXPECT_NEAR(s.coefficientOfVariation(), 10.0, 1e-9);
    EXPECT_NEAR(s.rangeOfVariability(), 20.0, 1e-9);
}

TEST(Summary, ZeroMeanSpreadIsNan)
{
    // A zero mean with nonzero spread has no meaningful relative
    // variability; silently reporting 0% would claim the opposite
    // of the truth. NaN, which reports render as "n/a", is honest.
    const std::vector<double> xs = {-1.0, 1.0};
    const Summary s = summarize(xs);
    EXPECT_TRUE(std::isnan(s.coefficientOfVariation()));
    EXPECT_TRUE(std::isnan(s.rangeOfVariability()));
}

TEST(Summary, AllZeroSamplesHaveZeroVariability)
{
    // Identically-zero samples genuinely have no variability: the
    // 0/0 case stays 0, not NaN.
    const std::vector<double> xs = {0.0, 0.0, 0.0};
    const Summary s = summarize(xs);
    EXPECT_EQ(s.coefficientOfVariation(), 0.0);
    EXPECT_EQ(s.rangeOfVariability(), 0.0);
}

TEST(Summary, NumericallyStableForLargeOffsets)
{
    // Welford should survive a large common offset.
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(1e12 + (i % 10));
    const Summary s = summarize(xs);
    EXPECT_NEAR(s.stddev, 2.8738, 1e-3);
}

TEST(Median, OddAndEven)
{
    EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_EQ(median({}), 0.0);
    EXPECT_EQ(median({7.0}), 7.0);
}

TEST(FreeFunctions, MatchSummary)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

} // namespace
} // namespace stats
} // namespace varsim
