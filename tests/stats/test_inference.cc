/**
 * @file
 * Tests of the paper's statistical machinery: confidence intervals,
 * the two-sample hypothesis test, the wrong conclusion ratio,
 * sample-size estimation (including the paper's worked example), and
 * one-way ANOVA.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hh"
#include "stats/inference.hh"

namespace varsim
{
namespace stats
{
namespace
{

TEST(ConfidenceInterval, KnownSmallSample)
{
    const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    const ConfidenceInterval ci =
        meanConfidenceInterval(xs, 0.95);
    EXPECT_DOUBLE_EQ(ci.mean, 5.0);
    // s = sqrt(32/7); half-width = t(.975,7) * s / sqrt(8).
    EXPECT_NEAR(ci.halfWidth(), 2.365 * std::sqrt(32.0 / 7.0) /
                                    std::sqrt(8.0),
                2e-3);
    EXPECT_LT(ci.lo, 5.0);
    EXPECT_GT(ci.hi, 5.0);
}

TEST(ConfidenceInterval, TightensWithSampleSize)
{
    // Same spread, more observations -> narrower interval
    // (Figure 10's behaviour).
    std::vector<double> small, large;
    for (int i = 0; i < 5; ++i)
        small.push_back(i % 2 ? 11.0 : 9.0);
    for (int i = 0; i < 20; ++i)
        large.push_back(i % 2 ? 11.0 : 9.0);
    EXPECT_GT(meanConfidenceInterval(small, 0.95).halfWidth(),
              meanConfidenceInterval(large, 0.95).halfWidth());
}

TEST(ConfidenceInterval, HigherConfidenceIsWider)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
    EXPECT_GT(meanConfidenceInterval(xs, 0.99).halfWidth(),
              meanConfidenceInterval(xs, 0.90).halfWidth());
}

TEST(ConfidenceInterval, OverlapDetection)
{
    ConfidenceInterval a{5, 4, 6, 0.95};
    ConfidenceInterval b{7, 6, 8, 0.95};
    ConfidenceInterval c{9, 8.5, 9.5, 0.95};
    EXPECT_TRUE(a.overlaps(b));  // touch at 6
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_FALSE(c.overlaps(a));
}

TEST(TTest, PooledMatchesHandComputation)
{
    // Paper Section 5.1.2: t = (y32 - y64) / sqrt((s32^2+s64^2)/n).
    const std::vector<double> a = {10, 12, 14, 16};  // mean 13
    const std::vector<double> b = {9, 10, 11, 10};   // mean 10
    const TTestResult r = pooledTTest(a, b);
    const double va = (9 + 1 + 1 + 9) / 3.0;
    const double vb = (1 + 0 + 1 + 0) / 3.0;
    EXPECT_NEAR(r.statistic, 3.0 / std::sqrt((va + vb) / 4.0),
                1e-12);
    EXPECT_EQ(r.degreesOfFreedom, 6.0);
    EXPECT_LT(r.pValueOneSided, 0.05);
}

TEST(TTest, IdenticalSamplesDoNotReject)
{
    const std::vector<double> a = {5, 6, 7, 8};
    const TTestResult r = pooledTTest(a, a);
    EXPECT_EQ(r.statistic, 0.0);
    EXPECT_NEAR(r.pValueOneSided, 0.5, 1e-9);
    EXPECT_FALSE(r.rejectsAtLevel(0.05));
}

TEST(TTest, WelchHandlesUnequalSizes)
{
    const std::vector<double> a = {10, 12, 14, 16, 13, 12};
    const std::vector<double> b = {9, 10, 11};
    const TTestResult r = welchTTest(a, b);
    EXPECT_GT(r.statistic, 0.0);
    EXPECT_GT(r.degreesOfFreedom, 1.0);
    EXPECT_LT(r.degreesOfFreedom, 8.0);
    EXPECT_LT(r.pValueOneSided, 0.1);
}

TEST(TTest, OneSidedDirectionMatters)
{
    const std::vector<double> lo = {1, 2, 3, 2};
    const std::vector<double> hi = {8, 9, 10, 9};
    // H1 is mean(first) > mean(second).
    EXPECT_GT(pooledTTest(hi, lo).statistic, 0.0);
    EXPECT_LT(pooledTTest(lo, hi).statistic, 0.0);
    EXPECT_TRUE(pooledTTest(hi, lo).rejectsAtLevel(0.01));
    EXPECT_FALSE(pooledTTest(lo, hi).rejectsAtLevel(0.01));
}

TEST(Wcr, EnumeratesAllPairs)
{
    // slower runs {5,6}, faster runs {4,7}: the pairs (5,7) and
    // (6,7) contradict -> WCR = 0.5.
    const std::vector<double> slower = {5, 6};
    const std::vector<double> faster = {4, 7};
    EXPECT_DOUBLE_EQ(wrongConclusionRatio(slower, faster), 0.5);
}

TEST(Wcr, DisjointRangesGiveZero)
{
    const std::vector<double> slower = {10, 11, 12};
    const std::vector<double> faster = {1, 2, 3};
    EXPECT_EQ(wrongConclusionRatio(slower, faster), 0.0);
}

TEST(Wcr, TiesCountAsWrong)
{
    const std::vector<double> slower = {5};
    const std::vector<double> faster = {5};
    EXPECT_EQ(wrongConclusionRatio(slower, faster), 1.0);
}

TEST(Wcr, AutoPicksDirectionFromMeans)
{
    const std::vector<double> a = {1, 2, 3};   // mean 2 (faster)
    const std::vector<double> b = {2, 3, 10};  // mean 5 (slower)
    // Auto must compare b-as-slower vs a-as-faster either way.
    EXPECT_DOUBLE_EQ(wrongConclusionRatioAuto(a, b),
                     wrongConclusionRatioAuto(b, a));
    // contradicting pairs: a-run >= b-run:
    // (2,2),(3,2),(3,3) -> 3/9.
    EXPECT_NEAR(wrongConclusionRatioAuto(a, b), 3.0 / 9.0, 1e-12);
}

TEST(SampleSize, PaperWorkedExample)
{
    // Section 5.1.1: r=4%, 95% confidence, CoV=9%. The normal
    // deviate (what the paper's round number reflects) gives
    // n = ceil((1.96 * 2.25)^2) = 20; iterating with the exact
    // t critical value (df = n-1, as the small-sample formula
    // requires) converges to 22.
    EXPECT_EQ(meanPrecisionSampleSize(0.09, 0.04, 0.95), 22u);
}

TEST(SampleSize, TInflatesSmallSamples)
{
    // The t-based requirement can never be below the closed-form
    // normal-deviate answer: t(df) >= z for every finite df.
    const double cov = 0.09, r = 0.04, conf = 0.95;
    const double z = normalQuantile(0.5 * (1.0 + conf));
    const auto zOnly = static_cast<std::size_t>(
        std::ceil(std::pow(z * cov / r, 2.0)));
    EXPECT_GE(meanPrecisionSampleSize(cov, r, conf), zOnly);
}

TEST(SampleSize, TMatchesNormalForLargeSamples)
{
    // With hundreds of runs required, df is large enough that the
    // t distribution is indistinguishable from the normal and the
    // iteration must not inflate the answer.
    const double cov = 0.50, r = 0.04, conf = 0.95;
    const double z = normalQuantile(0.5 * (1.0 + conf));
    const auto zOnly = static_cast<std::size_t>(
        std::ceil(std::pow(z * cov / r, 2.0)));
    const std::size_t n = meanPrecisionSampleSize(cov, r, conf);
    EXPECT_GE(n, zOnly);
    EXPECT_LE(n, zOnly + 3);
}

TEST(SampleSize, ShrinksWithLooserError)
{
    EXPECT_LT(meanPrecisionSampleSize(0.09, 0.10, 0.95),
              meanPrecisionSampleSize(0.09, 0.02, 0.95));
}

TEST(SampleSize, RunsNeededMonotoneInAlpha)
{
    // Table 5's qualitative shape: tighter significance -> more
    // runs, monotonically.
    const double diff = 1.0, va = 4.0, vb = 4.0;
    std::size_t prev = 0;
    for (double alpha : {0.10, 0.05, 0.025, 0.01, 0.005}) {
        const std::size_t n =
            runsNeededForSignificance(diff, va, vb, alpha);
        EXPECT_GE(n, prev);
        prev = n;
    }
}

TEST(SampleSize, LargerDifferenceNeedsFewerRuns)
{
    EXPECT_LE(runsNeededForSignificance(2.0, 1.0, 1.0, 0.05),
              runsNeededForSignificance(0.5, 1.0, 1.0, 0.05));
}

TEST(SampleSize, HandComputedCase)
{
    // diff=1, va=vb=1: t(n) = sqrt(n/2). n=6: t=1.732 vs crit
    // t(0.95, df=10)=1.812 -> not yet; n=7: t=1.870 vs
    // t(0.95,12)=1.782 -> rejects. Expect 7.
    EXPECT_EQ(runsNeededForSignificance(1.0, 1.0, 1.0, 0.05), 7u);
}

TEST(Anova, SeparatedGroupsAreSignificant)
{
    const std::vector<std::vector<double>> groups = {
        {1, 2, 3}, {2, 3, 4}, {9, 10, 11}};
    const AnovaResult r = oneWayAnova(groups);
    EXPECT_GT(r.fStatistic, 10.0);
    EXPECT_LT(r.pValue, 0.01);
    EXPECT_TRUE(r.significantAt(0.05));
    EXPECT_EQ(r.dfBetween, 2.0);
    EXPECT_EQ(r.dfWithin, 6.0);
}

TEST(Anova, IdenticalGroupsAreNot)
{
    const std::vector<std::vector<double>> groups = {
        {1, 2, 3, 4}, {2, 1, 4, 3}, {4, 3, 2, 1}};
    const AnovaResult r = oneWayAnova(groups);
    EXPECT_NEAR(r.fStatistic, 0.0, 1e-9);
    EXPECT_FALSE(r.significantAt(0.05));
}

TEST(Anova, HandComputedFStatistic)
{
    // groups {1,3} (mean 2) and {5,7} (mean 6); grand mean 4.
    // SSB = 2*(2-4)^2 + 2*(6-4)^2 = 16, df 1.
    // SSW = (1-2)^2+(3-2)^2+(5-6)^2+(7-6)^2 = 4, df 2 -> MSW 2.
    // F = 16 / 2 = 8.
    const AnovaResult r = oneWayAnova({{1, 3}, {5, 7}});
    EXPECT_NEAR(r.fStatistic, 8.0, 1e-9);
}

TEST(Anova, ZeroWithinVarianceDegenerate)
{
    const AnovaResult r = oneWayAnova({{2, 2}, {3, 3}});
    EXPECT_TRUE(r.significantAt(0.01));
    EXPECT_EQ(r.pValue, 0.0);
}

} // namespace
} // namespace stats
} // namespace varsim
