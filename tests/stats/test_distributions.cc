/**
 * @file
 * Validation of the from-scratch distribution code against standard
 * statistical-table values (the same tables the paper's Section 5
 * methodology consults).
 */

#include <gtest/gtest.h>

#include "stats/distributions.hh"

namespace varsim
{
namespace stats
{
namespace
{

TEST(Normal, CdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.841345, 1e-5);
    EXPECT_NEAR(normalCdf(-1.0), 0.158655, 1e-5);
    EXPECT_NEAR(normalCdf(1.959964), 0.975, 1e-5);
    EXPECT_NEAR(normalCdf(2.575829), 0.995, 1e-5);
}

TEST(Normal, QuantileKnownValues)
{
    EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(normalQuantile(0.95), 1.644854, 1e-4);
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-6);
    EXPECT_NEAR(normalQuantile(0.025), -1.959964, 1e-4);
}

TEST(Normal, QuantileInvertsCdf)
{
    for (double p = 0.01; p < 1.0; p += 0.07)
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-8);
}

TEST(IncompleteBeta, BoundaryValues)
{
    EXPECT_EQ(incompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_EQ(incompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetryIdentity)
{
    // I_x(a,b) = 1 - I_{1-x}(b,a)
    for (double x = 0.1; x < 1.0; x += 0.2) {
        EXPECT_NEAR(incompleteBeta(2.5, 4.0, x),
                    1.0 - incompleteBeta(4.0, 2.5, 1.0 - x), 1e-10);
    }
}

TEST(IncompleteBeta, HalfAtEqualShapes)
{
    EXPECT_NEAR(incompleteBeta(3.0, 3.0, 0.5), 0.5, 1e-10);
    EXPECT_NEAR(incompleteBeta(7.5, 7.5, 0.5), 0.5, 1e-10);
}

TEST(IncompleteBeta, UniformCase)
{
    // a=b=1 is the uniform distribution: I_x(1,1) = x.
    for (double x = 0.05; x < 1.0; x += 0.1)
        EXPECT_NEAR(incompleteBeta(1.0, 1.0, x), x, 1e-10);
}

TEST(StudentT, CdfSymmetry)
{
    for (double t = 0.0; t < 4.0; t += 0.5) {
        EXPECT_NEAR(studentTCdf(t, 7.0) + studentTCdf(-t, 7.0), 1.0,
                    1e-10);
    }
}

TEST(StudentT, QuantileMatchesTables)
{
    // Classic two-sided 95% critical values (p = 0.975).
    EXPECT_NEAR(studentTQuantile(0.975, 1), 12.706, 1e-2);
    EXPECT_NEAR(studentTQuantile(0.975, 5), 2.571, 1e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 10), 2.228, 1e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 19), 2.093, 1e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 30), 2.042, 1e-3);
    // One-sided 95% (p = 0.95).
    EXPECT_NEAR(studentTQuantile(0.95, 5), 2.015, 1e-3);
    EXPECT_NEAR(studentTQuantile(0.95, 16), 1.746, 1e-3);
}

TEST(StudentT, ApproachesNormalForLargeDf)
{
    EXPECT_NEAR(studentTQuantile(0.975, 1000),
                normalQuantile(0.975), 5e-3);
}

TEST(StudentT, CriticalValueHelpers)
{
    // Section 5.1.1: t below 50 samples, normal at or above.
    EXPECT_NEAR(tCriticalTwoSided(0.95, 19), 2.093, 1e-3);
    EXPECT_NEAR(tCriticalTwoSided(0.95, 100), 1.95996, 1e-3);
    EXPECT_NEAR(tCriticalOneSided(0.05, 16), 1.746, 1e-3);
    EXPECT_NEAR(tCriticalOneSided(0.01, 13), 2.650, 2e-3);
}

TEST(FDist, CdfMonotone)
{
    double prev = 0.0;
    for (double f = 0.1; f < 6.0; f += 0.3) {
        const double c = fCdf(f, 4, 20);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(FDist, QuantileMatchesTables)
{
    // F table 95th percentile values.
    EXPECT_NEAR(fQuantile(0.95, 9, 10), 3.020, 5e-3);
    EXPECT_NEAR(fQuantile(0.95, 4, 20), 2.866, 5e-3);
    EXPECT_NEAR(fQuantile(0.95, 1, 10), 4.965, 5e-3);
    EXPECT_NEAR(fQuantile(0.99, 5, 30), 3.699, 5e-3);
}

TEST(FDist, QuantileInvertsCdf)
{
    for (double p = 0.1; p < 1.0; p += 0.2)
        EXPECT_NEAR(fCdf(fQuantile(p, 6, 14), 6, 14), p, 1e-8);
}

TEST(FDist, RelatesToStudentT)
{
    // F(1, d) quantile = t(d) quantile squared.
    const double t = studentTQuantile(0.975, 12);
    EXPECT_NEAR(fQuantile(0.95, 1, 12), t * t, 1e-3 * t * t);
}

} // namespace
} // namespace stats
} // namespace varsim
