/**
 * @file
 * Statistical property tests: Monte Carlo validation that the
 * inference machinery delivers its advertised probabilities — the
 * entire point of the paper's methodology is that "95% confidence"
 * really bounds the wrong-conclusion probability, so the library
 * must earn that number, not just print it.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"
#include "stats/distributions.hh"
#include "stats/inference.hh"
#include "stats/summary.hh"

namespace varsim
{
namespace stats
{
namespace
{

/** n normal observations. */
std::vector<double>
normalSample(sim::Random &rng, std::size_t n, double mean,
             double sd)
{
    std::vector<double> xs(n);
    for (auto &x : xs)
        x = rng.normal(mean, sd);
    return xs;
}

TEST(MonteCarlo, ConfidenceIntervalCoverageIsNominal)
{
    // 95% CIs from n=10 normal samples must contain the true mean
    // ~95% of the time (binomial sd over 2000 trials ~ 0.5%).
    sim::Random rng(123);
    const double trueMean = 100.0;
    int covered = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        const auto xs = normalSample(rng, 10, trueMean, 15.0);
        const auto ci = meanConfidenceInterval(xs, 0.95);
        covered += ci.lo <= trueMean && trueMean <= ci.hi;
    }
    const double coverage = static_cast<double>(covered) / trials;
    EXPECT_NEAR(coverage, 0.95, 0.02);
}

TEST(MonteCarlo, LowerConfidenceCoversLess)
{
    sim::Random rng(321);
    int cov90 = 0, cov99 = 0;
    const int trials = 1500;
    for (int t = 0; t < trials; ++t) {
        const auto xs = normalSample(rng, 8, 0.0, 1.0);
        cov90 += meanConfidenceInterval(xs, 0.90).lo <= 0.0 &&
                 meanConfidenceInterval(xs, 0.90).hi >= 0.0;
        cov99 += meanConfidenceInterval(xs, 0.99).lo <= 0.0 &&
                 meanConfidenceInterval(xs, 0.99).hi >= 0.0;
    }
    EXPECT_NEAR(cov90 / double(trials), 0.90, 0.03);
    EXPECT_NEAR(cov99 / double(trials), 0.99, 0.012);
    EXPECT_LT(cov90, cov99);
}

TEST(MonteCarlo, TTestFalsePositiveRateMatchesAlpha)
{
    // Under H0 (equal means), the one-sided test at alpha=0.05 must
    // reject ~5% of the time (the type I error the paper bounds).
    sim::Random rng(77);
    int rejections = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        const auto a = normalSample(rng, 10, 50.0, 5.0);
        const auto b = normalSample(rng, 10, 50.0, 5.0);
        rejections += pooledTTest(a, b).rejectsAtLevel(0.05);
    }
    EXPECT_NEAR(rejections / double(trials), 0.05, 0.015);
}

TEST(MonteCarlo, TTestDetectsRealDifferences)
{
    // Power check: a 1-sd difference with n=20 is detected almost
    // always at alpha=0.05.
    sim::Random rng(88);
    int rejections = 0;
    const int trials = 500;
    for (int t = 0; t < trials; ++t) {
        const auto a = normalSample(rng, 20, 55.0, 5.0);
        const auto b = normalSample(rng, 20, 50.0, 5.0);
        rejections += pooledTTest(a, b).rejectsAtLevel(0.05);
    }
    EXPECT_GT(rejections / double(trials), 0.85);
}

TEST(MonteCarlo, AnovaFalsePositiveRateMatchesAlpha)
{
    sim::Random rng(55);
    int rejections = 0;
    const int trials = 1200;
    for (int t = 0; t < trials; ++t) {
        std::vector<std::vector<double>> groups;
        for (int g = 0; g < 4; ++g)
            groups.push_back(normalSample(rng, 6, 10.0, 2.0));
        rejections += oneWayAnova(groups).significantAt(0.05);
    }
    EXPECT_NEAR(rejections / double(trials), 0.05, 0.02);
}

TEST(MonteCarlo, WcrApproximatesOverlapProbability)
{
    // For two normal populations, WCR over many runs estimates
    // P(X_faster >= X_slower); check against the closed form
    // Phi(-d/(sd*sqrt(2))).
    sim::Random rng(99);
    const double d = 5.0, sd = 5.0;
    RunningStat wcrs;
    for (int t = 0; t < 60; ++t) {
        const auto slower = normalSample(rng, 25, 100.0 + d, sd);
        const auto faster = normalSample(rng, 25, 100.0, sd);
        wcrs.add(wrongConclusionRatio(slower, faster));
    }
    const double expected =
        1.0 - normalCdf(d / (sd * std::sqrt(2.0)));
    EXPECT_NEAR(wcrs.mean(), expected, 0.03);
}

TEST(MonteCarlo, DifferenceCICoverage)
{
    sim::Random rng(111);
    const double trueDiff = 7.0;
    int covered = 0;
    const int trials = 1500;
    for (int t = 0; t < trials; ++t) {
        const auto a = normalSample(rng, 12, 107.0, 6.0);
        const auto b = normalSample(rng, 12, 100.0, 6.0);
        const auto ci = differenceConfidenceInterval(a, b, 0.95);
        covered += ci.lo <= trueDiff && trueDiff <= ci.hi;
    }
    EXPECT_NEAR(covered / double(trials), 0.95, 0.02);
}

TEST(MonteCarlo, SampleSizeFormulaDeliversPrecision)
{
    // Follow the paper's recipe end-to-end: compute n for a 5%
    // relative error at 95% confidence given CoV 15%, then verify
    // empirically that the sample mean lands within 5% of the true
    // mean ~95% of the time.
    const std::size_t n =
        meanPrecisionSampleSize(0.15, 0.05, 0.95);
    sim::Random rng(222);
    int within = 0;
    const int trials = 1500;
    for (int t = 0; t < trials; ++t) {
        const auto xs = normalSample(rng, n, 100.0, 15.0);
        const double m = mean(xs);
        within += std::fabs(m - 100.0) <= 5.0;
    }
    EXPECT_GE(within / double(trials), 0.93);
}

} // namespace
} // namespace stats
} // namespace varsim
