/** @file Unit tests for the two-way ANOVA (Section 5.2 extension). */

#include <gtest/gtest.h>

#include "stats/anova2.hh"

namespace varsim
{
namespace stats
{
namespace
{

using Cells = std::vector<std::vector<std::vector<double>>>;

TEST(TwoWayAnova, DetectsMainEffectA)
{
    // A-levels differ, B-levels identical.
    const Cells cells = {
        {{10, 11, 10}, {10, 11, 10}},
        {{20, 21, 20}, {20, 21, 20}},
    };
    const auto r = twoWayAnova(cells);
    EXPECT_TRUE(r.aSignificantAt(0.01));
    EXPECT_FALSE(r.bSignificantAt(0.05));
    EXPECT_FALSE(r.interactionSignificantAt(0.05));
}

TEST(TwoWayAnova, DetectsMainEffectB)
{
    const Cells cells = {
        {{10, 11, 10}, {30, 31, 30}},
        {{10, 11, 10}, {30, 31, 30}},
    };
    const auto r = twoWayAnova(cells);
    EXPECT_FALSE(r.aSignificantAt(0.05));
    EXPECT_TRUE(r.bSignificantAt(0.01));
    EXPECT_FALSE(r.interactionSignificantAt(0.05));
}

TEST(TwoWayAnova, DetectsInteraction)
{
    // The B effect reverses across A levels: pure interaction.
    const Cells cells = {
        {{10, 11, 10}, {20, 21, 20}},
        {{20, 21, 20}, {10, 11, 10}},
    };
    const auto r = twoWayAnova(cells);
    EXPECT_FALSE(r.aSignificantAt(0.05));
    EXPECT_FALSE(r.bSignificantAt(0.05));
    EXPECT_TRUE(r.interactionSignificantAt(0.01));
}

TEST(TwoWayAnova, NullCaseNotSignificant)
{
    const Cells cells = {
        {{10, 12, 11, 13}, {11, 13, 10, 12}},
        {{12, 10, 13, 11}, {13, 11, 12, 10}},
    };
    const auto r = twoWayAnova(cells);
    EXPECT_FALSE(r.aSignificantAt(0.05));
    EXPECT_FALSE(r.bSignificantAt(0.05));
    EXPECT_FALSE(r.interactionSignificantAt(0.05));
}

TEST(TwoWayAnova, DegreesOfFreedom)
{
    const Cells cells = {
        {{1, 2}, {3, 4}, {5, 6}},
        {{2, 3}, {4, 5}, {6, 7}},
    };
    const auto r = twoWayAnova(cells); // a=2, b=3, n=2
    EXPECT_EQ(r.dfA, 1.0);
    EXPECT_EQ(r.dfB, 2.0);
    EXPECT_EQ(r.dfAB, 2.0);
    EXPECT_EQ(r.dfWithin, 6.0);
    EXPECT_FALSE(r.toString().empty());
}

TEST(TwoWayAnova, UnbalancedDesignDies)
{
    const Cells cells = {
        {{1, 2}, {3, 4}},
        {{2, 3}, {4, 5, 6}},
    };
    EXPECT_DEATH(twoWayAnova(cells), "unbalanced");
}

} // namespace
} // namespace stats
} // namespace varsim
