/**
 * @file
 * Unit tests for the fixed-bin histogram, especially the non-finite
 * sample handling: casting floor(NaN) or floor(inf) to an integer is
 * undefined behavior, so NaN/±inf must be diverted into the invalid
 * bucket before any conversion (the sanitized tier-1 run executes
 * these cases under UBSan).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/histogram.hh"

namespace varsim
{
namespace stats
{
namespace
{

TEST(Histogram, BinsUniformSamples)
{
    Histogram h(0.0, 10.0, 5);
    for (double x : {0.5, 2.5, 4.5, 6.5, 8.5})
        h.add(x);
    EXPECT_EQ(h.total(), 5u);
    for (std::size_t i = 0; i < h.bins(); ++i)
        EXPECT_EQ(h.count(i), 1u) << "bin " << i;
}

TEST(Histogram, ClampsFiniteOutliersIntoEdgeBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(1e300); // huge but finite: clamps, no UB
    h.add(std::numeric_limits<double>::max());
    h.add(10.0); // exactly the upper edge of [lo, hi)
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(4), 3u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.invalid(), 0u);
}

TEST(Histogram, NonFiniteSamplesGoToInvalidBucket)
{
    Histogram h(0.0, 10.0, 4);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(std::numeric_limits<double>::infinity());
    h.add(-std::numeric_limits<double>::infinity());
    h.add(5.0);

    // Before the fix, NaN fell through the clamp (every comparison
    // with NaN is false) and floor(NaN) was cast to an integer — UB,
    // and in practice a corrupted bin. Now the three non-finite
    // samples are isolated and total() still means "binned".
    EXPECT_EQ(h.invalid(), 3u);
    EXPECT_EQ(h.total(), 1u);
    std::size_t binned = 0;
    for (std::size_t i = 0; i < h.bins(); ++i)
        binned += h.count(i);
    EXPECT_EQ(binned, 1u);
}

TEST(Histogram, SpanAddCountsInvalidToo)
{
    Histogram h(0.0, 1.0, 2);
    const std::vector<double> xs = {
        0.25, std::numeric_limits<double>::quiet_NaN(), 0.75};
    h.add(xs);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_EQ(h.invalid(), 1u);
}

TEST(Histogram, RenderShowsInvalidRowOnlyWhenPresent)
{
    Histogram clean(0.0, 1.0, 2);
    clean.add(0.5);
    EXPECT_EQ(clean.render().find("invalid"), std::string::npos);

    Histogram dirty(0.0, 1.0, 2);
    dirty.add(std::numeric_limits<double>::quiet_NaN());
    EXPECT_NE(dirty.render().find("invalid"), std::string::npos);
}

} // anonymous namespace
} // namespace stats
} // namespace varsim
