/** @file Tests for the histogram and ASCII-table helpers. */

#include <gtest/gtest.h>

#include "stats/histogram.hh"
#include "stats/table.hh"

namespace varsim
{
namespace stats
{
namespace
{

TEST(Histogram, BinsCorrectly)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);  // bin 0
    h.add(3.0);  // bin 1
    h.add(9.9);  // bin 4
    h.add(5.0);  // bin 2
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(3), 0u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 2);
    h.add(-5.0);
    h.add(50.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.binLo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 12.5);
    EXPECT_DOUBLE_EQ(h.binLo(3), 17.5);
    EXPECT_DOUBLE_EQ(h.binHi(3), 20.0);
}

TEST(Histogram, RenderShowsBars)
{
    Histogram h(0.0, 2.0, 2);
    for (int i = 0; i < 10; ++i)
        h.add(0.5);
    h.add(1.5);
    const std::string s = h.render(10);
    EXPECT_NE(s.find("##########"), std::string::npos);
    EXPECT_NE(s.find("10"), std::string::npos);
}

TEST(Histogram, SpanAddsAll)
{
    Histogram h(0.0, 1.0, 1);
    const std::vector<double> xs = {0.1, 0.2, 0.3};
    h.add(std::span<const double>(xs.data(), xs.size()));
    EXPECT_EQ(h.total(), 3u);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"Config", "WCR"});
    t.addRow({"2-way vs 4-way", "31%"});
    t.addRow({"DM vs 4-way", "10%"});
    const std::string s = t.render();
    EXPECT_NE(s.find("| Config"), std::string::npos);
    EXPECT_NE(s.find("31%"), std::string::npos);
    EXPECT_NE(s.find("+--"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RuleRowsRender)
{
    Table t({"A"});
    t.addRow({"x"});
    t.addRule();
    t.addRow({"y"});
    const std::string s = t.render();
    // header rule + top + bottom + explicit = at least 4 rules
    std::size_t rules = 0;
    for (std::size_t at = s.find("+-"); at != std::string::npos;
         at = s.find("+-", at + 1))
        ++rules;
    EXPECT_GE(rules, 4u);
}

TEST(Table, MismatchedRowDies)
{
    Table t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only one"}), "row has");
}

TEST(Formatters, Basics)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtG(123456.0, 3), "1.23e+05");
    EXPECT_NE(fmtMeanSd(10.0, 0.5).find("+/-"), std::string::npos);
}

} // namespace
} // namespace stats
} // namespace varsim
