/**
 * @file
 * Unit tests for the domained event-queue machinery: InlineFn
 * storage classes, DomainRouter lane ordering, conservative delivery
 * at the exact quantum boundary, and DomainScheduler determinism
 * across worker counts.
 */

#include <gtest/gtest.h>

#include <array>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/domains.hh"

namespace varsim
{
namespace sim
{
namespace
{

// ---------------------------------------------------------------
// InlineFn
// ---------------------------------------------------------------

TEST(InlineFn, SmallTrivialCaptureStaysInline)
{
    int hits = 0;
    int *p = &hits;
    InlineFn fn([p] { ++*p; });
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_FALSE(fn.onHeap());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeap)
{
    // > inlineBytes of captured state forces the heap path.
    std::array<std::uint64_t, 8> big{};
    big[7] = 42;
    std::uint64_t out = 0;
    std::uint64_t *po = &out;
    InlineFn fn([big, po] { *po = big[7]; });
    EXPECT_TRUE(fn.onHeap());
    fn();
    EXPECT_EQ(out, 42u);
}

TEST(InlineFn, NonTriviallyCopyableCaptureFallsBackToHeap)
{
    // A std::string capture is small but not trivially copyable, so
    // the byte-copy move would be unsound inline.
    std::string tag = "domained";
    static std::string sink;
    InlineFn fn([tag] { sink = tag; });
    EXPECT_TRUE(fn.onHeap());
    fn();
    EXPECT_EQ(sink, "domained");
}

TEST(InlineFn, MoveTransfersOwnership)
{
    int hits = 0;
    int *p = &hits;
    InlineFn a([p] { ++*p; });
    InlineFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    // Heap payloads move as a single pointer; the moved-from side
    // must not double-free (exercised by destruction at scope exit).
    std::string s = "heap payload";
    InlineFn c([s] { (void)s; });
    ASSERT_TRUE(c.onHeap());
    InlineFn d(std::move(c));
    EXPECT_FALSE(static_cast<bool>(c));
    d();

    // Move assignment releases the previous payload.
    InlineFn e([s] { (void)s; });
    e = std::move(d);
    EXPECT_TRUE(static_cast<bool>(e));
    e();
}

// ---------------------------------------------------------------
// DomainRouter
// ---------------------------------------------------------------

struct Topology
{
    explicit Topology(std::size_t domains, Tick lookahead)
    {
        for (std::size_t i = 0; i < domains; ++i)
            ptrs.push_back(&owned.emplace_back());
        router.emplace(ptrs, lookahead);
    }

    std::deque<EventQueue> owned;
    std::vector<EventQueue *> ptrs;
    std::optional<DomainRouter> router;
};

TEST(DomainRouter, DrainOrderIsDestinationThenSourceThenFifo)
{
    Topology t(3, /*lookahead=*/10);
    std::vector<int> log;

    // Same destination tick everywhere: execution order is decided
    // purely by insertion (seq) order, i.e. by drain order.
    auto push = [&](DomainId src, DomainId dst, int id) {
        t.router->send(src, dst, 10, Event::defaultPri,
                       [&log, id] { log.push_back(id); });
    };
    push(2, 0, 1); // lane (2,0)
    push(1, 0, 2); // lane (1,0)
    push(1, 0, 3); // lane (1,0), behind id 2
    push(0, 1, 4); // lane (0,1): different destination
    push(2, 1, 5); // lane (2,1)

    t.router->drainAll();
    EXPECT_FALSE(t.router->anyPending());
    EXPECT_EQ(t.router->delivered(), 5u);

    for (auto &q : t.owned)
        q.run();

    // dst 0 first (src 1 before src 2, FIFO within src 1), then
    // dst 1 (src 0 before src 2).
    EXPECT_EQ(log, (std::vector<int>{2, 3, 1, 4, 5}));
}

TEST(DomainRouter, LaneCapacityPersistsAcrossRounds)
{
    Topology t(2, /*lookahead=*/5);
    int hits = 0;
    int *p = &hits;
    for (int round = 0; round < 3; ++round) {
        t.router->send(1, 0, t.owned[0].curTick() + 5,
                       Event::defaultPri, [p] { ++*p; });
        t.router->drainAll();
        t.owned[0].run();
    }
    EXPECT_EQ(hits, 3);
    EXPECT_EQ(t.router->delivered(), 3u);
}

// ---------------------------------------------------------------
// DomainScheduler
// ---------------------------------------------------------------

/**
 * A finite deterministic cascade: each domain starts with one event
 * that forwards a shrinking hop budget to the next domain at the
 * minimum legal tick (curTick + lookahead). Every execution appends
 * (tick, budget) to its domain's private log, so the logs are a
 * complete order-sensitive record of the computation.
 */
struct Cascade
{
    static constexpr Tick lookahead = 7;

    explicit Cascade(std::size_t domains, std::size_t workers)
        : topo(domains, lookahead),
          sched(topo.ptrs, *topo.router, workers), logs(domains)
    {}

    void
    hop(DomainId at, int budget)
    {
        logs[at].push_back({topo.owned[at].curTick(), budget});
        if (budget == 0)
            return;
        const DomainId next =
            static_cast<DomainId>((at + 1) % topo.owned.size());
        Cascade *self = this;
        topo.router->send(at, next,
                          topo.owned[at].curTick() + lookahead,
                          Event::defaultPri, [self, next, budget] {
                              self->hop(next, budget - 1);
                          });
    }

    void
    seed(DomainId at, Tick when, int budget)
    {
        Cascade *self = this;
        topo.owned[at].callAt(when, [self, at, budget] {
            self->hop(at, budget);
        });
    }

    Topology topo;
    DomainScheduler sched;
    std::vector<std::vector<std::pair<Tick, int>>> logs;
};

TEST(DomainScheduler, QuiescenceTerminatesRun)
{
    Cascade c(3, /*workers=*/1);
    c.seed(1, 3, /*budget=*/5);
    c.sched.run();
    EXPECT_TRUE(c.sched.idle());
    EXPECT_GT(c.sched.rounds(), 0u);
    // 6 hops total (budget 5..0).
    std::size_t hops = 0;
    for (const auto &log : c.logs)
        hops += log.size();
    EXPECT_EQ(hops, 6u);
}

TEST(DomainScheduler, MessageAtExactQuantumBoundaryDelivers)
{
    // A message sent at the minimum legal tick (srcTick + lookahead)
    // lands exactly one lookahead later — at the boundary of the
    // round that sent it — and must execute at precisely that tick,
    // not a round later or earlier.
    Cascade c(2, /*workers=*/1);
    c.seed(0, 11, /*budget=*/1);
    c.sched.run();
    ASSERT_EQ(c.logs[0].size(), 1u);
    ASSERT_EQ(c.logs[1].size(), 1u);
    EXPECT_EQ(c.logs[0][0], (std::pair<Tick, int>{11, 1}));
    EXPECT_EQ(c.logs[1][0],
              (std::pair<Tick, int>{11 + Cascade::lookahead, 0}));
}

TEST(DomainScheduler, WorkerCountDoesNotChangeExecution)
{
    // The same cascade on 1, 2 and 4 workers must produce
    // byte-identical per-domain logs: worker count changes which
    // host thread dispatches a domain, never what it dispatches.
    std::vector<std::vector<std::pair<Tick, int>>> reference;
    for (std::size_t workers : {1u, 2u, 4u}) {
        Cascade c(5, workers);
        c.seed(1, 3, 17);
        c.seed(2, 3, 17);  // same tick, different domains
        c.seed(4, 9, 23);  // later, long chain wrapping all domains
        c.sched.run();
        EXPECT_TRUE(c.sched.idle());
        if (reference.empty())
            reference = c.logs;
        else
            EXPECT_EQ(c.logs, reference)
                << "divergence with " << workers << " workers";
    }
}

TEST(DomainScheduler, SingleDomainDegenerateCase)
{
    // One domain (just the shared queue, no CPUs): rounds reduce to
    // plain serial dispatch and must still terminate and preserve
    // order, with any worker count.
    for (std::size_t workers : {1u, 4u}) {
        Topology t(1, /*lookahead=*/4);
        DomainScheduler sched(t.ptrs, *t.router, workers);
        std::vector<Tick> ticks;
        for (Tick when : {20u, 5u, 5u, 12u})
            t.owned[0].callAt(when, [&ticks, &t] {
                ticks.push_back(t.owned[0].curTick());
            });
        sched.run();
        EXPECT_TRUE(sched.idle());
        EXPECT_EQ(ticks, (std::vector<Tick>{5, 5, 12, 20}));
    }
}

TEST(DomainScheduler, StopRequestHaltsAtRoundBoundaryAndResumes)
{
    // requestStop from inside an event lets the round finish, run()
    // returns, and a later run() completes the cascade exactly as an
    // uninterrupted one would.
    auto finalLogs = [](bool interrupt) {
        Cascade c(3, /*workers=*/2);
        c.seed(0, 2, 9);
        if (interrupt) {
            DomainScheduler *s = &c.sched;
            c.topo.owned[0].callAt(30, [s] { s->requestStop(); });
        }
        c.sched.run();
        if (interrupt) {
            EXPECT_FALSE(c.sched.idle());
            c.sched.clearStop();
            c.sched.run();
        }
        EXPECT_TRUE(c.sched.idle());
        return c.logs;
    };
    EXPECT_EQ(finalLogs(true), finalLogs(false));
}

} // anonymous namespace
} // namespace sim
} // namespace varsim
