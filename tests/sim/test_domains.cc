/**
 * @file
 * Unit tests for the domained event-queue machinery: InlineFn
 * storage classes, DomainRouter lane ordering, conservative delivery
 * at the exact quantum boundary, and DomainScheduler determinism
 * across worker counts.
 */

#include <gtest/gtest.h>

#include <array>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/domains.hh"

namespace varsim
{
namespace sim
{
namespace
{

// ---------------------------------------------------------------
// InlineFn
// ---------------------------------------------------------------

TEST(InlineFn, SmallTrivialCaptureStaysInline)
{
    int hits = 0;
    int *p = &hits;
    InlineFn fn([p] { ++*p; });
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_FALSE(fn.onHeap());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeap)
{
    // > inlineBytes of captured state forces the heap path.
    std::array<std::uint64_t, 8> big{};
    big[7] = 42;
    std::uint64_t out = 0;
    std::uint64_t *po = &out;
    InlineFn fn([big, po] { *po = big[7]; });
    EXPECT_TRUE(fn.onHeap());
    fn();
    EXPECT_EQ(out, 42u);
}

TEST(InlineFn, NonTriviallyCopyableCaptureFallsBackToHeap)
{
    // A std::string capture is small but not trivially copyable, so
    // the byte-copy move would be unsound inline.
    std::string tag = "domained";
    static std::string sink;
    InlineFn fn([tag] { sink = tag; });
    EXPECT_TRUE(fn.onHeap());
    fn();
    EXPECT_EQ(sink, "domained");
}

TEST(InlineFn, MoveTransfersOwnership)
{
    int hits = 0;
    int *p = &hits;
    InlineFn a([p] { ++*p; });
    InlineFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    // Heap payloads move as a single pointer; the moved-from side
    // must not double-free (exercised by destruction at scope exit).
    std::string s = "heap payload";
    InlineFn c([s] { (void)s; });
    ASSERT_TRUE(c.onHeap());
    InlineFn d(std::move(c));
    EXPECT_FALSE(static_cast<bool>(c));
    d();

    // Move assignment releases the previous payload.
    InlineFn e([s] { (void)s; });
    e = std::move(d);
    EXPECT_TRUE(static_cast<bool>(e));
    e();
}

// ---------------------------------------------------------------
// DomainRouter
// ---------------------------------------------------------------

struct Topology
{
    explicit Topology(std::size_t domains, Tick lookahead)
    {
        for (std::size_t i = 0; i < domains; ++i)
            ptrs.push_back(&owned.emplace_back());
        router.emplace(ptrs, lookahead);
    }

    std::deque<EventQueue> owned;
    std::vector<EventQueue *> ptrs;
    std::optional<DomainRouter> router;
};

TEST(DomainRouter, DrainOrderIsDestinationThenSourceThenFifo)
{
    Topology t(3, /*lookahead=*/10);
    std::vector<int> log;

    // Same destination tick everywhere: execution order is decided
    // purely by insertion (seq) order, i.e. by drain order.
    auto push = [&](DomainId src, DomainId dst, int id) {
        t.router->send(src, dst, 10, Event::defaultPri,
                       [&log, id] { log.push_back(id); });
    };
    push(2, 0, 1); // lane (2,0)
    push(1, 0, 2); // lane (1,0)
    push(1, 0, 3); // lane (1,0), behind id 2
    push(0, 1, 4); // lane (0,1): different destination
    push(2, 1, 5); // lane (2,1)

    t.router->drainAll();
    EXPECT_FALSE(t.router->anyPending());
    EXPECT_EQ(t.router->delivered(), 5u);

    for (auto &q : t.owned)
        q.run();

    // dst 0 first (src 1 before src 2, FIFO within src 1), then
    // dst 1 (src 0 before src 2).
    EXPECT_EQ(log, (std::vector<int>{2, 3, 1, 4, 5}));
}

TEST(DomainRouter, LaneCapacityPersistsAcrossRounds)
{
    Topology t(2, /*lookahead=*/5);
    int hits = 0;
    int *p = &hits;
    for (int round = 0; round < 3; ++round) {
        t.router->send(1, 0, t.owned[0].curTick() + 5,
                       Event::defaultPri, [p] { ++*p; });
        t.router->drainAll();
        t.owned[0].run();
    }
    EXPECT_EQ(hits, 3);
    EXPECT_EQ(t.router->delivered(), 3u);
}

// ---------------------------------------------------------------
// DomainScheduler
// ---------------------------------------------------------------

/**
 * A finite deterministic cascade: each domain starts with one event
 * that forwards a shrinking hop budget to the next domain at the
 * minimum legal tick (curTick + lookahead). Every execution appends
 * (tick, budget) to its domain's private log, so the logs are a
 * complete order-sensitive record of the computation.
 */
struct Cascade
{
    static constexpr Tick lookahead = 7;

    explicit Cascade(std::size_t domains, std::size_t workers)
        : topo(domains, lookahead),
          sched(topo.ptrs, *topo.router, workers), logs(domains)
    {}

    void
    hop(DomainId at, int budget)
    {
        logs[at].push_back({topo.owned[at].curTick(), budget});
        if (budget == 0)
            return;
        const DomainId next =
            static_cast<DomainId>((at + 1) % topo.owned.size());
        Cascade *self = this;
        topo.router->send(at, next,
                          topo.owned[at].curTick() + lookahead,
                          Event::defaultPri, [self, next, budget] {
                              self->hop(next, budget - 1);
                          });
    }

    void
    seed(DomainId at, Tick when, int budget)
    {
        Cascade *self = this;
        topo.owned[at].callAt(when, [self, at, budget] {
            self->hop(at, budget);
        });
    }

    Topology topo;
    DomainScheduler sched;
    std::vector<std::vector<std::pair<Tick, int>>> logs;
};

TEST(DomainScheduler, QuiescenceTerminatesRun)
{
    Cascade c(3, /*workers=*/1);
    c.seed(1, 3, /*budget=*/5);
    c.sched.run();
    EXPECT_TRUE(c.sched.idle());
    EXPECT_GT(c.sched.rounds(), 0u);
    // 6 hops total (budget 5..0).
    std::size_t hops = 0;
    for (const auto &log : c.logs)
        hops += log.size();
    EXPECT_EQ(hops, 6u);
}

TEST(DomainScheduler, MessageAtExactQuantumBoundaryDelivers)
{
    // A message sent at the minimum legal tick (srcTick + lookahead)
    // lands exactly one lookahead later — at the boundary of the
    // round that sent it — and must execute at precisely that tick,
    // not a round later or earlier.
    Cascade c(2, /*workers=*/1);
    c.seed(0, 11, /*budget=*/1);
    c.sched.run();
    ASSERT_EQ(c.logs[0].size(), 1u);
    ASSERT_EQ(c.logs[1].size(), 1u);
    EXPECT_EQ(c.logs[0][0], (std::pair<Tick, int>{11, 1}));
    EXPECT_EQ(c.logs[1][0],
              (std::pair<Tick, int>{11 + Cascade::lookahead, 0}));
}

TEST(DomainScheduler, WorkerCountDoesNotChangeExecution)
{
    // The same cascade on 1, 2 and 4 workers must produce
    // byte-identical per-domain logs: worker count changes which
    // host thread dispatches a domain, never what it dispatches.
    std::vector<std::vector<std::pair<Tick, int>>> reference;
    for (std::size_t workers : {1u, 2u, 4u}) {
        Cascade c(5, workers);
        c.seed(1, 3, 17);
        c.seed(2, 3, 17);  // same tick, different domains
        c.seed(4, 9, 23);  // later, long chain wrapping all domains
        c.sched.run();
        EXPECT_TRUE(c.sched.idle());
        if (reference.empty())
            reference = c.logs;
        else
            EXPECT_EQ(c.logs, reference)
                << "divergence with " << workers << " workers";
    }
}

TEST(DomainScheduler, SingleDomainDegenerateCase)
{
    // One domain (just the shared queue, no CPUs): rounds reduce to
    // plain serial dispatch and must still terminate and preserve
    // order, with any worker count.
    for (std::size_t workers : {1u, 4u}) {
        Topology t(1, /*lookahead=*/4);
        DomainScheduler sched(t.ptrs, *t.router, workers);
        std::vector<Tick> ticks;
        for (Tick when : {20u, 5u, 5u, 12u})
            t.owned[0].callAt(when, [&ticks, &t] {
                ticks.push_back(t.owned[0].curTick());
            });
        sched.run();
        EXPECT_TRUE(sched.idle());
        EXPECT_EQ(ticks, (std::vector<Tick>{5, 5, 12, 20}));
    }
}

TEST(DomainRouter, PerLaneLookaheadOverridesDefault)
{
    Topology t(3, /*lookahead=*/10);
    EXPECT_EQ(t.router->laneLookahead(1, 0), 10u);
    t.router->setLaneLookahead(1, 0, 25);
    EXPECT_EQ(t.router->laneLookahead(1, 0), 25u);
    EXPECT_EQ(t.router->laneLookahead(0, 1), 10u);
    t.router->markLaneUnused(1, 2);
    EXPECT_EQ(t.router->laneLookahead(1, 2),
              DomainRouter::laneUnused);

    // A message at the widened lane's minimum still delivers.
    int hits = 0;
    int *p = &hits;
    t.router->send(1, 0, t.owned[1].curTick() + 25,
                   Event::defaultPri, [p] { ++*p; });
    t.router->drainAll();
    t.owned[0].run();
    EXPECT_EQ(hits, 1);
}

TEST(DomainScheduler, UnusedLaneImposesNoHorizon)
{
    // Domain 0 runs a 60-event self-chain; domain 1 never sends.
    // With the (1, 0) lane declared unused nothing bounds domain 0,
    // so the whole chain dispatches in one round; with the lane live
    // the conservative horizon forces one round per lookahead
    // quantum.
    auto roundsFor = [](bool unused) {
        Topology t(2, /*lookahead=*/5);
        if (unused)
            t.router->markLaneUnused(1, 0);
        DomainScheduler sched(t.ptrs, *t.router, 1);
        int hops = 0;
        std::function<void()> chain = [&] {
            if (++hops < 60)
                t.owned[0].callAt(t.owned[0].curTick() + 1, chain);
        };
        t.owned[0].callAt(1, chain);
        sched.run();
        EXPECT_EQ(hops, 60);
        return sched.rounds();
    };
    EXPECT_EQ(roundsFor(true), 1u);
    EXPECT_GT(roundsFor(false), 4u);
}

TEST(DomainScheduler, ReachAnnotationWidensHorizon)
{
    // Domain 1 runs a long self-chain. Unannotated, each chain event
    // could message domain 0 at once, and domain 0's immediate reply
    // reflects a two-lookahead bound back onto domain 1 — one round
    // per quantum. Annotating the chain's events ("no cross-domain
    // send before +100") pushes that whole reflection out by the
    // declared delay, so the chain collapses into a couple of
    // rounds. Same dispatch either way; only the round count moves.
    auto roundsFor = [](Tick otherDelay) {
        Topology t(2, /*lookahead=*/5);
        DomainScheduler sched(t.ptrs, *t.router, 1);
        int hops = 0;
        std::function<void()> chain = [&] {
            if (++hops < 100)
                t.owned[1].callAt(
                    t.owned[1].curTick() + 1, chain,
                    Event::defaultPri,
                    SendReach{SendReach::noDomain, 0, otherDelay});
        };
        t.owned[1].callAt(1, chain, Event::defaultPri,
                          SendReach{SendReach::noDomain, 0,
                                    otherDelay});
        sched.run();
        EXPECT_EQ(hops, 100);
        return sched.rounds();
    };
    EXPECT_LT(roundsFor(100), 5u);
    EXPECT_GT(roundsFor(0), 8u);
}

TEST(DomainScheduler, EchoChainStaysConservative)
{
    // Regression: an annotated item of domain 0 wakes domain 1, and
    // domain 1's *reply* re-enters domain 0 then echoes on into
    // domain 2 after only a few lookaheads — far inside the direct
    // reach claim. The horizon fixpoint must bound domain 2 by the
    // reflected chain, not the one-hop annotation, or the echo lands
    // in domain 2's past (eventq asserts scheduled-in-the-past).
    constexpr Tick la = 5;
    Topology t(3, la);
    t.router->markLaneUnused(1, 2);
    t.router->markLaneUnused(2, 1);
    DomainScheduler sched(t.ptrs, *t.router, 1);

    std::vector<Tick> echoLog;
    auto *log = &echoLog;
    auto *r = &*t.router;
    auto *q0 = &t.owned[0];
    auto *q1 = &t.owned[1];
    auto *q2 = &t.owned[2];
    // Item of domain 0: immediate toward domain 1, distant (+1000)
    // toward anyone else.
    q0->callAt(
        10,
        [=] {
            r->send(0, 1, q0->curTick() + la, Event::defaultPri,
                    [=] {
                        r->send(1, 0, q1->curTick() + la,
                                Event::defaultPri, [=] {
                                    r->send(0, 2,
                                            q0->curTick() + la,
                                            Event::defaultPri,
                                            [=] {
                                                log->push_back(
                                                    q2->curTick());
                                            });
                                });
                    });
        },
        Event::defaultPri, SendReach{1, 0, 1000});

    // Busy chain in domain 2 that would race past the echo under the
    // unsound one-hop bound.
    int hops = 0;
    std::function<void()> chain = [&] {
        if (++hops < 300)
            q2->callAt(q2->curTick() + 1, chain);
    };
    q2->callAt(1, chain);

    sched.run();
    EXPECT_TRUE(sched.idle());
    ASSERT_EQ(echoLog.size(), 1u);
    EXPECT_EQ(echoLog[0], 10 + 3 * la);
}

TEST(DomainScheduler, RoundCountersAreObservable)
{
    Cascade c(3, /*workers=*/2);
    c.seed(0, 2, 9);
    c.sched.run();
    EXPECT_TRUE(c.sched.idle());
    EXPECT_EQ(c.sched.parties(), 2u);
    EXPECT_GT(c.sched.rounds(), 0u);
    // A one-message-at-a-time cascade never has two runnable
    // domains, so every round is serial.
    EXPECT_EQ(c.sched.serialRoundCount(), c.sched.rounds());
    EXPECT_EQ(c.sched.eventsPerRound().count(), c.sched.rounds());
    std::uint64_t wall = 0;
    for (DomainId d = 0; d < 3; ++d)
        wall += c.sched.domainWallNs(d);
    EXPECT_GT(wall, 0u);
}

TEST(DomainScheduler, StopRequestHaltsAtRoundBoundaryAndResumes)
{
    // requestStop from inside an event lets the round finish, run()
    // returns, and a later run() completes the cascade exactly as an
    // uninterrupted one would.
    auto finalLogs = [](bool interrupt) {
        Cascade c(3, /*workers=*/2);
        c.seed(0, 2, 9);
        if (interrupt) {
            DomainScheduler *s = &c.sched;
            c.topo.owned[0].callAt(30, [s] { s->requestStop(); });
        }
        c.sched.run();
        if (interrupt) {
            EXPECT_FALSE(c.sched.idle());
            c.sched.clearStop();
            c.sched.run();
        }
        EXPECT_TRUE(c.sched.idle());
        return c.logs;
    };
    EXPECT_EQ(finalLogs(true), finalLogs(false));
}

} // anonymous namespace
} // namespace sim
} // namespace varsim
