/**
 * @file
 * Tests for run-scoped trace attribution: the RunScope RAII id, the
 * "[run-id]" line prefix, per-run file sinks, and scope nesting —
 * what makes VARSIM_DEBUG output from concurrent runs attributable.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/trace.hh"

namespace varsim
{
namespace sim
{
namespace trace
{
namespace
{

/** print() into a tmpfile sink and hand back what it wrote. */
std::string
captureLine(const std::string &runId)
{
    std::FILE *tmp = std::tmpfile();
    EXPECT_NE(tmp, nullptr);
    {
        RunScope scope(runId, tmp);
        print(1234, "system.cpu0", "dispatch t%d", 7);
    }
    std::rewind(tmp);
    char buf[256] = {};
    const std::size_t got =
        std::fread(buf, 1, sizeof(buf) - 1, tmp);
    std::fclose(tmp);
    return std::string(buf, got);
}

TEST(RunScope, NoScopeMeansEmptyId)
{
    EXPECT_EQ(RunScope::currentId(), "");
    EXPECT_EQ(RunScope::currentSink(), stderr);
}

TEST(RunScope, SetsAndRestoresId)
{
    {
        RunScope scope("g1.r4");
        EXPECT_EQ(RunScope::currentId(), "g1.r4");
    }
    EXPECT_EQ(RunScope::currentId(), "");
}

TEST(RunScope, NestedScopesRestoreTheOuter)
{
    RunScope outer("outer");
    {
        RunScope inner("inner");
        EXPECT_EQ(RunScope::currentId(), "inner");
    }
    EXPECT_EQ(RunScope::currentId(), "outer");
}

TEST(RunScope, LinesCarryTheRunPrefix)
{
    const std::string line = captureLine("g2.r7");
    // "[<run-id>] <tick>: <who>: <message>\n", one write per line.
    EXPECT_EQ(line,
              "[g2.r7]         1234: system.cpu0: dispatch t7\n");
}

TEST(RunScope, UnscopedLinesAreUnprefixed)
{
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    {
        // Empty id: sink redirection without attribution.
        RunScope scope("", tmp);
        print(9, "system.bus", "nack");
    }
    std::rewind(tmp);
    char buf[128] = {};
    const std::size_t got =
        std::fread(buf, 1, sizeof(buf) - 1, tmp);
    std::fclose(tmp);
    EXPECT_EQ(std::string(buf, got),
              "           9: system.bus: nack\n");
}

TEST(RunScope, SinkIsInheritedByNestedScopes)
{
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    {
        RunScope outer("o", tmp);
        // No sink argument: the nested scope keeps the outer sink.
        RunScope inner("i");
        EXPECT_EQ(RunScope::currentSink(), tmp);
        EXPECT_EQ(RunScope::currentId(), "i");
    }
    EXPECT_EQ(RunScope::currentSink(), stderr);
    std::fclose(tmp);
}

} // anonymous namespace
} // namespace trace
} // namespace sim
} // namespace varsim
