/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include "sim/eventq.hh"

namespace varsim
{
namespace sim
{
namespace
{

class CountingEvent : public Event
{
  public:
    explicit CountingEvent(std::vector<int> *log, int id,
                           Priority p = defaultPri)
        : Event(p), log_(log), id_(id)
    {}

    void process() override { log_->push_back(id_); }
    std::string name() const override { return "counting"; }

  private:
    std::vector<int> *log_;
    int id_;
};

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    eq.schedule(&b, 20);
    eq.schedule(&a, 10);
    eq.schedule(&c, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByInsertion)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.schedule(&c, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTiesBeforeInsertionOrder)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent late(&log, 1, Event::statsPri);
    CountingEvent early(&log, 2, Event::memoryResponsePri);
    eq.schedule(&late, 5);
    eq.schedule(&early, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, RunUntilStopTick)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 100);
    eq.run(50);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, StopRequestHaltsAfterCurrentEvent)
{
    EventQueue eq;
    std::vector<int> log;

    class StopperEvent : public Event
    {
      public:
        StopperEvent(EventQueue *q, std::vector<int> *log)
            : q_(q), log_(log)
        {}
        void
        process() override
        {
            log_->push_back(99);
            q_->requestStop();
        }

      private:
        EventQueue *q_;
        std::vector<int> *log_;
    };

    StopperEvent s(&eq, &log);
    CountingEvent b(&log, 2);
    eq.schedule(&s, 10);
    eq.schedule(&b, 20);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{99}));
    EXPECT_TRUE(eq.stopPending());
    eq.clearStop();
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{99, 2}));
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue eq;

    class SelfScheduler : public Event
    {
      public:
        SelfScheduler(EventQueue *q, int *count) : q_(q), n_(count) {}
        void
        process() override
        {
            if (++*n_ < 5)
                q_->schedule(this, q_->curTick() + 7);
        }

      private:
        EventQueue *q_;
        int *n_;
    };

    int count = 0;
    SelfScheduler ev(&eq, &count);
    eq.schedule(&ev, 0);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 28u);
}

TEST(EventQueue, DispatchCountTracksEvents)
{
    EventQueue eq;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    eq.run();
    EXPECT_EQ(eq.numDispatched(), 2u);
}

TEST(EventQueue, RestoreTickMovesTimeForward)
{
    EventQueue eq;
    eq.restoreTick(12345);
    EXPECT_EQ(eq.curTick(), 12345u);
    std::vector<int> log;
    CountingEvent a(&log, 1);
    eq.schedule(&a, 12350);
    eq.run();
    EXPECT_EQ(eq.curTick(), 12350u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    std::vector<int> log;
    std::vector<std::unique_ptr<CountingEvent>> events;
    // Schedule with deterministic pseudo-shuffled ticks; dispatch
    // order must be sorted by tick regardless.
    std::vector<Tick> ticks;
    for (int i = 0; i < 1000; ++i)
        ticks.push_back((i * 7919) % 1000);
    for (int i = 0; i < 1000; ++i) {
        events.push_back(std::make_unique<CountingEvent>(
            &log, static_cast<int>(ticks[i])));
        eq.schedule(events.back().get(), ticks[i]);
    }
    eq.run();
    ASSERT_EQ(log.size(), 1000u);
    for (std::size_t i = 1; i < log.size(); ++i)
        EXPECT_LE(log[i - 1], log[i]);
}

} // namespace
} // namespace sim
} // namespace varsim
