/** @file Unit and property tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/random.hh"
#include "sim/serialize.hh"

namespace varsim
{
namespace sim
{
namespace
{

TEST(Random, SameSeedSameSequence)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Random, UniformIntRespectsBounds)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniformInt(3, 17);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 17u);
    }
}

TEST(Random, UniformIntDegenerateRange)
{
    Random r(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.uniformInt(9, 9), 9u);
}

TEST(Random, UniformIntMeanIsCentered)
{
    // The paper's perturbation: uniform on {0..4}, mean 2 ns
    // (Section 3.3: "increases the average L2 miss latency by 2 ns").
    Random r(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.uniformInt(0, 4));
    EXPECT_NEAR(sum / n, 2.0, 0.02);
}

TEST(Random, UniformIntIsUniform)
{
    Random r(13);
    std::array<int, 5> buckets{};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.uniformInt(0, 4)];
    for (int count : buckets)
        EXPECT_NEAR(count, n / 5, n / 100);
}

TEST(Random, UniformRealInUnitInterval)
{
    Random r(17);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, ExponentialHasRequestedMean)
{
    Random r(19);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Random, NormalHasRequestedMoments)
{
    Random r(23);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(Random, SerializeRoundTripContinuesSequence)
{
    Random a(99);
    for (int i = 0; i < 57; ++i)
        a.next();

    CheckpointOut out;
    a.serialize(out);
    Random b(0);
    CheckpointIn in(out.bytes());
    b.unserialize(in);

    EXPECT_EQ(a, b);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, ReseedResetsState)
{
    Random a(5);
    const auto first = a.next();
    a.next();
    a.seed(5);
    EXPECT_EQ(a.next(), first);
}

TEST(ZipfSampler, SamplesWithinRange)
{
    Random r(31);
    ZipfSampler z(100, 0.9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(r), 100u);
}

TEST(ZipfSampler, HeadIsHotterThanTail)
{
    Random r(37);
    ZipfSampler z(1000, 1.0);
    int head = 0, tail = 0;
    for (int i = 0; i < 50000; ++i) {
        const std::size_t s = z.sample(r);
        if (s < 10)
            ++head;
        else if (s >= 500)
            ++tail;
    }
    EXPECT_GT(head, tail * 2);
}

TEST(ZipfSampler, AlphaZeroIsUniform)
{
    Random r(41);
    ZipfSampler z(10, 0.0);
    std::array<int, 10> buckets{};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[z.sample(r)];
    for (int count : buckets)
        EXPECT_NEAR(count, n / 10, n / 50);
}

} // namespace
} // namespace sim
} // namespace varsim
