/**
 * @file
 * Unit tests for the metrics registry: registration-order dumps,
 * lazy formula evaluation, distribution expansion, name-collision
 * detection, and the JSONL schema round-trip.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/jsonl.hh"
#include "sim/statistics.hh"

namespace varsim
{
namespace sim
{
namespace statistics
{
namespace
{

TEST(Distribution, WelfordMoments)
{
    Distribution d;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(x);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.sum(), 40.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    // Sample stddev: sqrt(32/7).
    EXPECT_NEAR(d.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(Distribution, EmptyIsAllZero)
{
    const Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.stddev(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
}

TEST(Registry, DumpFollowsRegistrationOrder)
{
    Registry r;
    std::uint64_t a = 1, b = 2;
    r.regScalar("z.last", &b);
    r.regScalar("a.first", &a);
    const StatDump d = r.dump();
    ASSERT_EQ(d.size(), 2u);
    // Registration order, NOT lexicographic: the JSONL schema is the
    // construction order of the simulation.
    EXPECT_EQ(d[0].name, "z.last");
    EXPECT_EQ(d[1].name, "a.first");
}

TEST(Registry, ScalarsAreSampledAtDumpTime)
{
    Registry r;
    std::uint64_t counter = 0;
    r.regScalar("c", &counter);
    counter = 41;
    ++counter;
    const StatDump d = r.dump();
    EXPECT_DOUBLE_EQ(d[0].value, 42.0);
}

TEST(Registry, FormulasEvaluateLazily)
{
    Registry r;
    int evaluations = 0;
    double current = 1.0;
    r.regFormula("f", [&] {
        ++evaluations;
        return current;
    });
    EXPECT_EQ(evaluations, 0); // nothing computed at registration
    current = 7.5;
    EXPECT_DOUBLE_EQ(r.dump()[0].value, 7.5);
    EXPECT_EQ(evaluations, 1);
}

TEST(Registry, DistributionExpandsToFiveStats)
{
    Registry r;
    Distribution d;
    r.regDistribution("queue_delay", &d);
    d.sample(10.0);
    d.sample(20.0);

    const StatDump dump = r.dump();
    ASSERT_EQ(dump.size(), 5u);
    EXPECT_EQ(dump[0].name, "queue_delay.count");
    EXPECT_EQ(dump[1].name, "queue_delay.mean");
    EXPECT_EQ(dump[2].name, "queue_delay.stddev");
    EXPECT_EQ(dump[3].name, "queue_delay.min");
    EXPECT_EQ(dump[4].name, "queue_delay.max");
    EXPECT_DOUBLE_EQ(dump[0].value, 2.0);
    EXPECT_DOUBLE_EQ(dump[1].value, 15.0);
    EXPECT_DOUBLE_EQ(dump[3].value, 10.0);
    EXPECT_DOUBLE_EQ(dump[4].value, 20.0);

    // size() counts entries; statNames() the expanded schema.
    EXPECT_EQ(r.size(), 1u);
    EXPECT_EQ(r.statNames().size(), 5u);
    EXPECT_TRUE(r.has("queue_delay"));
    EXPECT_TRUE(r.has("queue_delay.mean"));
}

TEST(Registry, DescriptionsAreRetrievable)
{
    Registry r;
    std::uint64_t v = 0;
    r.regScalar("hits", &v, "cache hits");
    r.regFormula("ratio", [] { return 0.0; });
    EXPECT_EQ(r.description("hits"), "cache hits");
    EXPECT_EQ(r.description("ratio"), "");
    EXPECT_EQ(r.description("nonexistent"), "");
}

TEST(RegistryDeathTest, DuplicateNameIsFatal)
{
    std::uint64_t v = 0;
    Registry r;
    r.regScalar("dup", &v);
    EXPECT_DEATH(r.regScalar("dup", &v), "duplicate statistic");
}

TEST(RegistryDeathTest, DistributionCollidesWithExpansion)
{
    std::uint64_t v = 0;
    Registry r;
    Distribution d;
    r.regScalar("q.mean", &v);
    // The distribution would expand to q.count..q.max — q.mean
    // collides with the already-registered scalar.
    EXPECT_DEATH(r.regDistribution("q", &d), "duplicate statistic");
}

TEST(Jsonl, SchemaRoundTrip)
{
    Registry r;
    std::uint64_t hits = 123;
    r.regScalar("system.l1.hits", &hits);
    r.regFormula("system.l1.miss_ratio", [] { return 0.25; });
    Distribution dist;
    dist.sample(1.5);
    r.regDistribution("system.bus.delay", &dist);

    const std::string line = toJsonl(r.dump());

    JsonLine parsed;
    ASSERT_TRUE(parsed.parse(line));
    EXPECT_DOUBLE_EQ(parsed.real("system.l1.hits"), 123.0);
    EXPECT_DOUBLE_EQ(parsed.real("system.l1.miss_ratio"), 0.25);
    EXPECT_DOUBLE_EQ(parsed.real("system.bus.delay.count"), 1.0);
    EXPECT_DOUBLE_EQ(parsed.real("system.bus.delay.mean"), 1.5);

    // Doubles round-trip bit-exactly through the %.17g encoding.
    Registry r2;
    r2.regFormula("pi_ish", [] { return 0.1 + 0.2; });
    JsonLine p2;
    ASSERT_TRUE(p2.parse(toJsonl(r2.dump())));
    EXPECT_EQ(p2.real("pi_ish"), 0.1 + 0.2);
}

TEST(Jsonl, ByteStableAcrossIdenticalDumps)
{
    Registry r;
    std::uint64_t v = 7;
    r.regScalar("a", &v);
    r.regFormula("b", [] { return 1.0 / 3.0; });
    EXPECT_EQ(toJsonl(r.dump()), toJsonl(r.dump()));
}

} // anonymous namespace
} // namespace statistics
} // namespace sim
} // namespace varsim
