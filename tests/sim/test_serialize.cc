/** @file Unit tests for the checkpoint archive. */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/serialize.hh"

namespace varsim
{
namespace sim
{
namespace
{

TEST(Checkpoint, ScalarRoundTrip)
{
    CheckpointOut out;
    out.put<std::uint64_t>(0xdeadbeefcafef00dULL);
    out.put<std::int32_t>(-42);
    out.put<double>(3.25);
    out.put<bool>(true);

    CheckpointIn in(out.bytes());
    std::uint64_t a = 0;
    std::int32_t b = 0;
    double c = 0;
    bool d = false;
    in.get(a);
    in.get(b);
    in.get(c);
    in.get(d);
    EXPECT_EQ(a, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(b, -42);
    EXPECT_EQ(c, 3.25);
    EXPECT_TRUE(d);
    EXPECT_TRUE(in.exhausted());
}

TEST(Checkpoint, StringRoundTrip)
{
    CheckpointOut out;
    out.put(std::string("hello varsim"));
    out.put(std::string(""));

    CheckpointIn in(out.bytes());
    std::string s, t;
    in.get(s);
    in.get(t);
    EXPECT_EQ(s, "hello varsim");
    EXPECT_EQ(t, "");
}

TEST(Checkpoint, VectorRoundTrip)
{
    CheckpointOut out;
    std::vector<std::uint32_t> v = {1, 2, 3, 5, 8, 13};
    out.put(v);
    std::vector<double> empty;
    out.put(empty);

    CheckpointIn in(out.bytes());
    std::vector<std::uint32_t> v2;
    std::vector<double> e2 = {9.0};
    in.get(v2);
    in.get(e2);
    EXPECT_EQ(v2, v);
    EXPECT_TRUE(e2.empty());
}

TEST(Checkpoint, DequeRoundTrip)
{
    CheckpointOut out;
    std::deque<std::int32_t> d = {7, -7, 77};
    out.put(d);

    CheckpointIn in(out.bytes());
    std::deque<std::int32_t> d2;
    in.get(d2);
    EXPECT_EQ(d2, d);
}

TEST(Checkpoint, TypeTagMismatchDies)
{
    CheckpointOut out;
    out.put<std::uint64_t>(1);
    CheckpointIn in(out.bytes());
    std::uint32_t wrong = 0;
    EXPECT_DEATH(in.get(wrong), "type mismatch");
}

TEST(Checkpoint, UnderrunDies)
{
    CheckpointOut out;
    out.put<std::uint8_t>(1);
    CheckpointIn in(out.bytes());
    std::uint8_t v = 0;
    in.get(v);
    EXPECT_DEATH(in.get(v), "underrun");
}

TEST(Checkpoint, HugeStringLengthPrefixDies)
{
    // A corrupted length prefix near UINT64_MAX must fail the bounds
    // check, not wrap the cursor around zero and read out of bounds.
    CheckpointOut out;
    out.put(std::string("abc"));
    auto bytes = out.bytes();
    // Layout: 0xff tag, u64 tag (8), u64 length, payload. Smash the
    // length to an enormous value.
    for (std::size_t i = 2; i < 10; ++i)
        bytes[i] = 0xff;
    CheckpointIn in(std::move(bytes));
    std::string s;
    EXPECT_DEATH(in.get(s), "underrun");
}

TEST(Checkpoint, HugeVectorLengthPrefixDies)
{
    // Same attack on the vector path: n * sizeof(T) must not overflow
    // into a small in-bounds byte count.
    CheckpointOut out;
    out.put(std::vector<std::uint64_t>{1, 2, 3});
    auto bytes = out.bytes();
    for (std::size_t i = 2; i < 10; ++i)
        bytes[i] = 0xff;
    CheckpointIn in(std::move(bytes));
    std::vector<std::uint64_t> v;
    EXPECT_DEATH(in.get(v), "underrun");
}

TEST(Checkpoint, VectorLengthOverflowMultipleDies)
{
    // n chosen so n * sizeof(u64) wraps to a tiny value in 64 bits:
    // 0x2000000000000001 * 8 == 8 (mod 2^64).
    CheckpointOut out;
    out.put(std::vector<std::uint64_t>{7});
    auto bytes = out.bytes();
    const std::uint64_t evil = 0x2000000000000001ull;
    std::memcpy(bytes.data() + 2, &evil, sizeof(evil));
    CheckpointIn in(std::move(bytes));
    std::vector<std::uint64_t> v;
    EXPECT_DEATH(in.get(v), "underrun");
}

TEST(Checkpoint, TruncatedAtEveryByteDiesCleanly)
{
    // Truncating a well-formed archive at any byte must die with a
    // checkpoint error (tag check or bounds check), never UB.
    CheckpointOut out;
    out.put<std::uint32_t>(0xdeadbeef);
    out.put(std::string("payload"));
    out.put(std::vector<std::uint16_t>{1, 2, 3, 4});
    const auto &whole = out.bytes();
    for (std::size_t cut = 0; cut < whole.size(); ++cut) {
        std::vector<std::uint8_t> part(whole.begin(),
                                       whole.begin() + cut);
        EXPECT_DEATH(
            {
                CheckpointIn in(std::move(part));
                std::uint32_t a = 0;
                std::string s;
                std::vector<std::uint16_t> v;
                in.get(a);
                in.get(s);
                in.get(v);
            },
            "checkpoint");
    }
}

TEST(Checkpoint, StructRoundTrip)
{
    struct Pod
    {
        std::uint32_t a;
        double b;
        bool operator==(const Pod &) const = default;
    };
    CheckpointOut out;
    Pod p{9, 2.5};
    out.put(p);
    CheckpointIn in(out.bytes());
    Pod q{};
    in.get(q);
    EXPECT_EQ(q, p);
}

TEST(Checkpoint, InterleavedTypesKeepOrder)
{
    CheckpointOut out;
    for (std::uint32_t i = 0; i < 100; ++i) {
        out.put(i);
        out.put(std::string(i % 7, 'x'));
    }
    CheckpointIn in(out.bytes());
    for (std::uint32_t i = 0; i < 100; ++i) {
        std::uint32_t v = 0;
        std::string s;
        in.get(v);
        in.get(s);
        EXPECT_EQ(v, i);
        EXPECT_EQ(s.size(), i % 7);
    }
    EXPECT_TRUE(in.exhausted());
}

} // namespace
} // namespace sim
} // namespace varsim
