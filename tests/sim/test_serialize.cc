/** @file Unit tests for the checkpoint archive. */

#include <gtest/gtest.h>

#include "sim/serialize.hh"

namespace varsim
{
namespace sim
{
namespace
{

TEST(Checkpoint, ScalarRoundTrip)
{
    CheckpointOut out;
    out.put<std::uint64_t>(0xdeadbeefcafef00dULL);
    out.put<std::int32_t>(-42);
    out.put<double>(3.25);
    out.put<bool>(true);

    CheckpointIn in(out.bytes());
    std::uint64_t a = 0;
    std::int32_t b = 0;
    double c = 0;
    bool d = false;
    in.get(a);
    in.get(b);
    in.get(c);
    in.get(d);
    EXPECT_EQ(a, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(b, -42);
    EXPECT_EQ(c, 3.25);
    EXPECT_TRUE(d);
    EXPECT_TRUE(in.exhausted());
}

TEST(Checkpoint, StringRoundTrip)
{
    CheckpointOut out;
    out.put(std::string("hello varsim"));
    out.put(std::string(""));

    CheckpointIn in(out.bytes());
    std::string s, t;
    in.get(s);
    in.get(t);
    EXPECT_EQ(s, "hello varsim");
    EXPECT_EQ(t, "");
}

TEST(Checkpoint, VectorRoundTrip)
{
    CheckpointOut out;
    std::vector<std::uint32_t> v = {1, 2, 3, 5, 8, 13};
    out.put(v);
    std::vector<double> empty;
    out.put(empty);

    CheckpointIn in(out.bytes());
    std::vector<std::uint32_t> v2;
    std::vector<double> e2 = {9.0};
    in.get(v2);
    in.get(e2);
    EXPECT_EQ(v2, v);
    EXPECT_TRUE(e2.empty());
}

TEST(Checkpoint, DequeRoundTrip)
{
    CheckpointOut out;
    std::deque<std::int32_t> d = {7, -7, 77};
    out.put(d);

    CheckpointIn in(out.bytes());
    std::deque<std::int32_t> d2;
    in.get(d2);
    EXPECT_EQ(d2, d);
}

TEST(Checkpoint, TypeTagMismatchDies)
{
    CheckpointOut out;
    out.put<std::uint64_t>(1);
    CheckpointIn in(out.bytes());
    std::uint32_t wrong = 0;
    EXPECT_DEATH(in.get(wrong), "type mismatch");
}

TEST(Checkpoint, UnderrunDies)
{
    CheckpointOut out;
    out.put<std::uint8_t>(1);
    CheckpointIn in(out.bytes());
    std::uint8_t v = 0;
    in.get(v);
    EXPECT_DEATH(in.get(v), "underrun");
}

TEST(Checkpoint, StructRoundTrip)
{
    struct Pod
    {
        std::uint32_t a;
        double b;
        bool operator==(const Pod &) const = default;
    };
    CheckpointOut out;
    Pod p{9, 2.5};
    out.put(p);
    CheckpointIn in(out.bytes());
    Pod q{};
    in.get(q);
    EXPECT_EQ(q, p);
}

TEST(Checkpoint, InterleavedTypesKeepOrder)
{
    CheckpointOut out;
    for (std::uint32_t i = 0; i < 100; ++i) {
        out.put(i);
        out.put(std::string(i % 7, 'x'));
    }
    CheckpointIn in(out.bytes());
    for (std::uint32_t i = 0; i < 100; ++i) {
        std::uint32_t v = 0;
        std::string s;
        in.get(v);
        in.get(s);
        EXPECT_EQ(v, i);
        EXPECT_EQ(s.size(), i % 7);
    }
    EXPECT_TRUE(in.exhausted());
}

} // namespace
} // namespace sim
} // namespace varsim
