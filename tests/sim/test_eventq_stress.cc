/**
 * @file
 * Event-queue stress: lazy descheduling, pooled one-shot callbacks
 * and ordering under dense schedule/deschedule/reschedule churn.
 *
 * The queue deschedules lazily (tombstones stay in the heap until
 * they surface), so these tests drive the queue through interleavings
 * where stale entries pile up and verify that dispatch order,
 * size()/empty() accounting and rescheduling semantics are exactly
 * those of an eagerly-compacted queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"
#include "sim/random.hh"

namespace
{

using namespace varsim::sim;

/** Records its dispatch (tick, id) into a shared log. */
class LogEvent : public Event
{
  public:
    LogEvent(int id, EventQueue &q,
             std::vector<std::pair<Tick, int>> &log,
             Priority p = defaultPri)
        : Event(p), id_(id), q_(q), log_(log)
    {}

    void
    process() override
    {
        log_.emplace_back(q_.curTick(), id_);
    }

  private:
    int id_;
    EventQueue &q_;
    std::vector<std::pair<Tick, int>> &log_;
};

TEST(EventQueueStress, RescheduleChurnPreservesOrder)
{
    EventQueue q;
    std::vector<std::pair<Tick, int>> log;
    std::vector<std::unique_ptr<LogEvent>> events;
    const int n = 32;
    for (int i = 0; i < n; ++i)
        events.push_back(std::make_unique<LogEvent>(i, q, log));

    // Schedule all, then repeatedly move events around. Every
    // reschedule tombstones the old heap entry, so after this loop
    // the heap holds several times more entries than live events.
    for (int i = 0; i < n; ++i)
        q.schedule(events[i].get(), 100 + i);
    SplitMix64 rng(7);
    for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < n; ++i) {
            const Tick when = 100 + rng.next() % 64;
            q.reschedule(events[i].get(), when);
        }
    }
    EXPECT_EQ(q.size(), static_cast<std::size_t>(n));

    q.run();
    ASSERT_EQ(log.size(), static_cast<std::size_t>(n));
    EXPECT_TRUE(q.empty());

    // Dispatch must be by (tick, then reschedule order): ticks
    // non-decreasing, and equal ticks in the order of the final
    // reschedule round (which assigned increasing sequence numbers
    // by index i).
    for (std::size_t k = 1; k < log.size(); ++k) {
        ASSERT_GE(log[k].first, log[k - 1].first);
        if (log[k].first == log[k - 1].first)
            EXPECT_GT(log[k].second, log[k - 1].second)
                << "same-tick order must follow insertion sequence";
    }
}

TEST(EventQueueStress, DescheduleIsExactDespiteTombstones)
{
    EventQueue q;
    std::vector<std::pair<Tick, int>> log;
    std::vector<std::unique_ptr<LogEvent>> events;
    const int n = 40;
    for (int i = 0; i < n; ++i) {
        events.push_back(std::make_unique<LogEvent>(i, q, log));
        q.schedule(events[i].get(), 10 + i);
    }

    // Deschedule every third event; size() must track live events,
    // not heap entries.
    std::size_t live = n;
    for (int i = 0; i < n; i += 3) {
        q.deschedule(events[i].get());
        --live;
        EXPECT_FALSE(events[i]->scheduled());
    }
    EXPECT_EQ(q.size(), live);
    EXPECT_FALSE(q.empty());

    q.run();
    EXPECT_EQ(log.size(), live);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    for (const auto &entry : log)
        EXPECT_NE(entry.second % 3, 0)
            << "descheduled event " << entry.second << " fired";
}

TEST(EventQueueStress, DescheduleThenRescheduleFiresOnce)
{
    EventQueue q;
    std::vector<std::pair<Tick, int>> log;
    LogEvent ev(1, q, log);

    q.schedule(&ev, 50);
    q.deschedule(&ev);
    q.schedule(&ev, 60);
    q.deschedule(&ev);
    q.schedule(&ev, 70);
    EXPECT_EQ(q.size(), 1u);

    q.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].first, Tick{70});
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, StepSkipsTombstones)
{
    EventQueue q;
    std::vector<std::pair<Tick, int>> log;
    std::vector<std::unique_ptr<LogEvent>> events;
    for (int i = 0; i < 4; ++i)
        events.push_back(std::make_unique<LogEvent>(i, q, log));

    // Tombstones at the top of the heap: events 0..2 are earliest
    // but get descheduled; step() must fire event 3.
    for (int i = 0; i < 4; ++i)
        q.schedule(events[i].get(), 10 + i);
    for (int i = 0; i < 3; ++i)
        q.deschedule(events[i].get());

    q.step();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].second, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, PooledCallbacksRecycleAndStayOrdered)
{
    EventQueue q;
    std::vector<int> order;

    // Rounds of one-shot callbacks: each round schedules from inside
    // the previous round's callbacks, continuously recycling pool
    // events. Interleave two priorities to check same-tick ordering
    // of pooled events.
    const int rounds = 50;
    std::function<void(int)> scheduleRound = [&](int r) {
        if (r >= rounds)
            return;
        q.callAt(q.curTick() + 5,
                 [&order, r, &scheduleRound] {
                     order.push_back(2 * r + 1);
                     scheduleRound(r + 1);
                 },
                 Event::schedulerPri);
        q.callAt(q.curTick() + 5, [&order, r] {
            order.push_back(2 * r);
        });
    };
    scheduleRound(0);
    q.run();

    ASSERT_EQ(order.size(), static_cast<std::size_t>(2 * rounds));
    for (int r = 0; r < rounds; ++r) {
        // defaultPri (even id) fires before schedulerPri (odd id).
        EXPECT_EQ(order[2 * r], 2 * r);
        EXPECT_EQ(order[2 * r + 1], 2 * r + 1);
    }
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, OversizedCallableStillFires)
{
    EventQueue q;
    // A capture larger than the inline buffer takes the heap
    // fallback path; semantics must be identical.
    struct Big
    {
        std::uint64_t words[16];
    };
    Big big{};
    big.words[0] = 41;
    big.words[15] = 1;
    std::uint64_t result = 0;
    q.callAt(3, [big, &result] {
        result = big.words[0] + big.words[15];
    });
    q.run();
    EXPECT_EQ(result, 42u);
    EXPECT_TRUE(q.empty());
}

} // namespace
