/**
 * @file
 * Golden pins and determinism matrix for the domained (intra-run
 * parallel) engine.
 *
 * The domained engine is a distinct timing model: cross-domain
 * interactions (L1<->L2, CPU<->kernel) pay the conservative
 * lookahead as a hop latency, so its absolute numbers differ from
 * the legacy serial engine's by a small skew. Its contract, pinned
 * here, is threefold:
 *
 *  1. results are a pure function of (config, workload, seed) —
 *     the table below is the oracle, like test_determinism_golden;
 *  2. results are bitwise identical for every --threads value,
 *     including the full stats registry dump and the OS scheduling
 *     trace (the headline property of the design);
 *  3. checkpoints are portable: bytes identical across thread
 *     counts, continuation identical to restoration, and legacy
 *     checkpoints restore onto the domained engine.
 */

#include <gtest/gtest.h>

#include "core/varsim.hh"
#include "sample/runner.hh"

namespace
{

using namespace varsim;

core::SystemConfig
goldenSys()
{
    core::SystemConfig sys = core::SystemConfig::testDefault();
    sys.mem.perturbMaxNs = 4; // exercise the perturbation path
    return sys;
}

workload::WorkloadParams
goldenWl(workload::WorkloadKind kind)
{
    workload::WorkloadParams wl;
    wl.kind = kind;
    wl.threadsPerCpu = 2; // oversubscribed: scheduler in play
    return wl;
}

core::RunConfig
goldenRun(std::uint64_t seed, std::size_t threads)
{
    core::RunConfig rc;
    rc.warmupTxns = 10;
    rc.measureTxns = 40;
    rc.perturbSeed = seed;
    rc.par.threads = threads;
    // Real worker threads even on small hosts: this suite is the
    // ThreadSanitizer gate for the engine, so the barrier machinery
    // must actually run multi-threaded.
    rc.par.clampThreadsToHost = false;
    return rc;
}

/** FNV-1a over the 8 little-endian bytes of @p v. */
std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

struct Golden
{
    workload::WorkloadKind kind;
    std::uint64_t seed;
    std::uint64_t runtimeTicks;
    std::uint64_t txns;
    std::uint64_t l2Misses;
    std::uint64_t dispatches;
    std::uint64_t instructions;
    std::uint64_t traceHash;
};

// Pins for the domained engine (lookahead auto = l2HitLatency / 2).
// Regenerate only on a deliberate model change, never to "fix" a
// parallelism bug — divergence from these values under any thread
// count IS the bug.
const Golden goldenTable[] = {
    {workload::WorkloadKind::Oltp, 11ull, 204233ull, 40ull, 4103ull,
     46ull, 131942ull, 10026904219885934213ull},
    {workload::WorkloadKind::Oltp, 12ull, 199058ull, 40ull, 4009ull,
     48ull, 128241ull, 9789354669978000983ull},
    {workload::WorkloadKind::Apache, 11ull, 46065ull, 40ull, 997ull,
     21ull, 31518ull, 13851625815240542648ull},
    {workload::WorkloadKind::Apache, 12ull, 42481ull, 40ull, 1005ull,
     17ull, 32501ull, 707058742838627985ull},
    {workload::WorkloadKind::SpecJbb, 11ull, 65057ull, 40ull,
     1746ull, 20ull, 46122ull, 6301174061160970575ull},
    {workload::WorkloadKind::SpecJbb, 12ull, 65111ull, 40ull,
     1746ull, 20ull, 46148ull, 15854945857880085363ull},
};

struct Observation
{
    core::RunResult r;
    std::uint64_t traceHash = 0;
    std::string statsJsonl;
};

Observation
observe(const Golden &g, std::size_t threads, sim::Tick lookahead =
            core::ParallelConfig::lookaheadAuto)
{
    const auto sys = goldenSys();
    core::RunConfig rc = goldenRun(g.seed, threads);
    rc.par.lookahead = lookahead;
    core::Simulation simn(sys, goldenWl(g.kind), rc.par);
    simn.seedPerturbation(g.seed);
    simn.kernel().enableTrace(1u << 20);

    Observation o;
    o.r = core::measure(simn, rc, sys.numCpus());
    std::uint64_t h = 1469598103934665603ull;
    for (const auto &e : simn.kernel().traceEvents()) {
        h = fnv1a(h, e.when);
        h = fnv1a(h, static_cast<std::uint64_t>(e.cpu));
        h = fnv1a(h, static_cast<std::uint64_t>(e.thread));
        h = fnv1a(h, static_cast<std::uint64_t>(e.kind));
    }
    o.traceHash = h;
    o.statsJsonl = o.r.statsJsonl();
    return o;
}

class ParallelGoldenMatrix : public ::testing::TestWithParam<Golden>
{};

TEST_P(ParallelGoldenMatrix, BitwiseIdenticalAcrossThreadCounts)
{
    const Golden &g = GetParam();

    // threads = 1 must hit the pinned values exactly...
    const Observation base = observe(g, 1);
    EXPECT_EQ(base.r.runtimeTicks, g.runtimeTicks);
    EXPECT_EQ(base.r.txns, g.txns);
    EXPECT_EQ(base.r.mem.l2Misses, g.l2Misses);
    EXPECT_EQ(base.r.os.dispatches, g.dispatches);
    EXPECT_EQ(base.r.cpu.instructions, g.instructions);
    EXPECT_EQ(base.traceHash, g.traceHash);

    // ...and every other worker count must be indistinguishable
    // from it, down to the full stats dump and the trace hash.
    for (std::size_t threads : {2u, 4u, 8u}) {
        const Observation par = observe(g, threads);
        EXPECT_EQ(par.r.runtimeTicks, base.r.runtimeTicks)
            << "threads=" << threads;
        EXPECT_EQ(par.r.cyclesPerTxn, base.r.cyclesPerTxn)
            << "threads=" << threads;
        EXPECT_EQ(par.traceHash, base.traceHash)
            << "threads=" << threads;
        EXPECT_EQ(par.statsJsonl, base.statsJsonl)
            << "threads=" << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, ParallelGoldenMatrix, ::testing::ValuesIn(goldenTable),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(workload::kindName(info.param.kind)) +
               "_seed" + std::to_string(info.param.seed);
    });

// lookahead = 0 disables the domained engine entirely: the run must
// land on the LEGACY golden pins (test_determinism_golden row 0),
// not the domained ones, proving the fallback truly is the serial
// engine and not a degenerate domained mode.
TEST(ParallelGolden, ZeroLookaheadFallsBackToSerialEngine)
{
    const Golden legacy{workload::WorkloadKind::Oltp, 11ull,
                        186781ull, 40ull, 3948ull, 43ull, 125432ull,
                        4213816009097953443ull};
    core::ParallelConfig pc;
    pc.threads = 4;
    pc.lookahead = 0;
    EXPECT_FALSE(pc.enabled());

    const Observation o = observe(legacy, 4, /*lookahead=*/0);
    EXPECT_EQ(o.r.runtimeTicks, legacy.runtimeTicks);
    EXPECT_EQ(o.r.mem.l2Misses, legacy.l2Misses);
    EXPECT_EQ(o.r.os.dispatches, legacy.dispatches);
    EXPECT_EQ(o.traceHash, legacy.traceHash);
}

// One CPU: a single CPU domain plus the shared domain. The smallest
// nontrivial topology must behave like every other one — identical
// across thread counts (workers simply idle when outnumbered by
// domains).
TEST(ParallelGolden, SingleCpuDegenerateTopology)
{
    core::SystemConfig sys = core::SystemConfig::testDefault();
    sys.mem.perturbMaxNs = 4;
    sys.mem.numNodes = 1;

    auto runIt = [&](std::size_t threads) {
        core::RunConfig rc;
        rc.warmupTxns = 5;
        rc.measureTxns = 20;
        rc.perturbSeed = 11;
        rc.par.threads = threads;
        rc.par.clampThreadsToHost = false;
        workload::WorkloadParams wl;
        wl.kind = workload::WorkloadKind::Oltp;
        wl.threadsPerCpu = 2;
        core::Simulation simn(sys, wl, rc.par);
        simn.seedPerturbation(rc.perturbSeed);
        return core::measure(simn, rc, sys.numCpus());
    };

    const auto t1 = runIt(1);
    const auto t2 = runIt(2);
    EXPECT_GT(t1.txns, 0u);
    EXPECT_EQ(t1.runtimeTicks, t2.runtimeTicks);
    EXPECT_EQ(t1.cyclesPerTxn, t2.cyclesPerTxn);
    EXPECT_EQ(t1.statsJsonl(), t2.statsJsonl());
}

// Sampling on the domained engine: fast-mode intervals quiesce at
// domain round boundaries before the engines swap, so a sampled run
// must stay bitwise identical across worker counts too — windows,
// estimates, stats dump, everything. This test runs real worker
// threads (no host clamp) and is part of the ThreadSanitizer gate.
TEST(ParallelGoldenSampled, SampledRunIdenticalAcrossThreadCounts)
{
    const auto sys = goldenSys();
    const auto wl = goldenWl(workload::WorkloadKind::Oltp);

    auto runIt = [&](std::size_t threads) {
        core::RunConfig rc = goldenRun(11, threads);
        rc.measureTxns = 200;
        EXPECT_TRUE(core::SampleConfig::parse("stratified:50:8:12",
                                              rc.sample));
        return sample::runOnce(sys, wl, rc);
    };

    const core::RunResult base = runIt(1);
    EXPECT_EQ(base.sampled.windows, 4u);
    EXPECT_GT(base.sampled.fastTxns, 0u);
    EXPECT_FALSE(base.sampled.fullDetailFallback);

    for (std::size_t threads : {2u, 4u, 8u}) {
        const core::RunResult par = runIt(threads);
        EXPECT_EQ(par.runtimeTicks, base.runtimeTicks)
            << "threads=" << threads;
        EXPECT_EQ(par.txns, base.txns) << "threads=" << threads;
        EXPECT_EQ(par.sampled.windows, base.sampled.windows)
            << "threads=" << threads;
        EXPECT_EQ(par.sampled.fastTxns, base.sampled.fastTxns)
            << "threads=" << threads;
        EXPECT_EQ(par.sampled.cptMean, base.sampled.cptMean)
            << "threads=" << threads;
        EXPECT_EQ(par.sampled.ipcHi, base.sampled.ipcHi)
            << "threads=" << threads;
        EXPECT_EQ(par.statsJsonl(), base.statsJsonl())
            << "threads=" << threads;
    }
}

// Checkpoint portability matrix: bytes identical for every thread
// count, continuing past a checkpoint is bitwise the same as
// restoring it (even onto a different thread count), and a legacy
// serial checkpoint restores onto the domained engine.
TEST(ParallelGolden, CheckpointRoundTripAcrossThreadCounts)
{
    const auto sys = goldenSys();
    const auto wl = goldenWl(workload::WorkloadKind::Oltp);
    auto par = [](std::size_t t) {
        core::ParallelConfig p;
        p.threads = t;
        p.clampThreadsToHost = false;
        return p;
    };

    // Same simulated prefix, four thread counts: one image.
    core::Checkpoint cps[4];
    int k = 0;
    for (std::size_t t : {1u, 2u, 4u, 8u}) {
        core::Simulation s(sys, wl, par(t));
        s.seedPerturbation(7);
        s.runTransactions(15);
        cps[k++] = s.checkpoint();
    }
    EXPECT_EQ(cps[0].bytes, cps[1].bytes);
    EXPECT_EQ(cps[1].bytes, cps[2].bytes);
    EXPECT_EQ(cps[2].bytes, cps[3].bytes);

    // Continuation == restoration, across an engine-width change.
    core::Simulation cont(sys, wl, par(2));
    cont.seedPerturbation(7);
    cont.runTransactions(15);
    const auto cp = cont.checkpoint();
    const auto pc = cont.runTransactions(25);

    auto rest = core::Simulation::restore(sys, wl, cp, par(4));
    const auto pr = rest->runTransactions(25);
    EXPECT_EQ(pc.txns, pr.txns);
    EXPECT_EQ(pc.elapsed, pr.elapsed);
    EXPECT_EQ(cont.now(), rest->now());
    EXPECT_EQ(cont.totalTxns(), rest->totalTxns());

    // Legacy image onto the domained engine: the format is shared.
    core::Simulation leg(sys, wl);
    leg.seedPerturbation(7);
    leg.runTransactions(15);
    const auto lcp = leg.checkpoint();
    auto onto = core::Simulation::restore(sys, wl, lcp, par(2));
    const auto lp = onto->runTransactions(25);
    EXPECT_EQ(lp.txns, 25u);
    EXPECT_TRUE(onto->parallelEngine());
}

} // anonymous namespace
