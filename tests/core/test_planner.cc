/**
 * @file
 * Tests of the experiment planner (Section 5.2 future-work items):
 * checkpoint sampling strategies and the fixed-budget
 * length-vs-count tradeoff.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/planner.hh"
#include "stats/distributions.hh"
#include "stats/inference.hh"

namespace varsim
{
namespace core
{
namespace
{

TEST(Sampling, SystematicIsEvenlySpaced)
{
    const auto pts =
        planCheckpoints(SamplingStrategy::Systematic, 1000, 4);
    EXPECT_EQ(pts, (std::vector<std::uint64_t>{250, 500, 750,
                                               1000}));
}

TEST(Sampling, RandomIsDeterministicPerSeed)
{
    const auto a =
        planCheckpoints(SamplingStrategy::Random, 10000, 8, 7);
    const auto b =
        planCheckpoints(SamplingStrategy::Random, 10000, 8, 7);
    const auto c =
        planCheckpoints(SamplingStrategy::Random, 10000, 8, 8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Sampling, RandomPointsAreSortedUniqueInRange)
{
    const auto pts =
        planCheckpoints(SamplingStrategy::Random, 500, 16, 3);
    ASSERT_EQ(pts.size(), 16u);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_GE(pts[i], 1u);
        if (i > 0) {
            EXPECT_GT(pts[i], pts[i - 1]);
        }
    }
}

TEST(Sampling, StratifiedCoversEveryStratum)
{
    const std::uint64_t lifetime = 8000;
    const std::size_t samples = 8;
    const auto pts = planCheckpoints(SamplingStrategy::Stratified,
                                     lifetime, samples, 11);
    ASSERT_EQ(pts.size(), samples);
    const std::uint64_t stratum = lifetime / samples;
    for (std::size_t i = 0; i < samples; ++i) {
        EXPECT_GT(pts[i], stratum * i);
        EXPECT_LE(pts[i], stratum * (i + 1));
    }
}

TEST(Sampling, StratifiedIsDeterministicPerSeed)
{
    const auto a =
        planCheckpoints(SamplingStrategy::Stratified, 9000, 6, 21);
    const auto b =
        planCheckpoints(SamplingStrategy::Stratified, 9000, 6, 21);
    const auto c =
        planCheckpoints(SamplingStrategy::Stratified, 9000, 6, 22);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Sampling, StratifiedExactlyOnePerStratum)
{
    // Across many seeds, every stratum must hold exactly one point;
    // a clustering failure would put two points in one stratum and
    // none in another.
    const std::uint64_t lifetime = 12000;
    const std::size_t samples = 12;
    const std::uint64_t stratum = lifetime / samples;
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        const auto pts = planCheckpoints(
            SamplingStrategy::Stratified, lifetime, samples, seed);
        ASSERT_EQ(pts.size(), samples);
        std::vector<std::size_t> perStratum(samples, 0);
        for (const std::uint64_t p : pts) {
            ASSERT_GE(p, 1u);
            ASSERT_LE(p, lifetime);
            // Point p lands in stratum floor((p-1)/stratum) since
            // stratum i covers (stratum*i, stratum*(i+1)].
            ++perStratum[(p - 1) / stratum];
        }
        for (std::size_t i = 0; i < samples; ++i)
            EXPECT_EQ(perStratum[i], 1u)
                << "stratum " << i << " at seed " << seed;
    }
}

TEST(Sampling, SingleSampleWorks)
{
    for (auto strat :
         {SamplingStrategy::Systematic, SamplingStrategy::Random,
          SamplingStrategy::Stratified}) {
        const auto pts = planCheckpoints(strat, 100, 1, 5);
        ASSERT_EQ(pts.size(), 1u);
        EXPECT_GE(pts[0], 1u);
        EXPECT_LE(pts[0], 100u);
    }
}

TEST(Budget, FitsInvSqrtLawAndRespectsBudget)
{
    // Pilot data following cov = 40/sqrt(N) exactly (Table 4-like).
    std::vector<std::pair<std::uint64_t, double>> pilots = {
        {100, 4.0}, {400, 2.0}, {1600, 1.0}};
    const BudgetPlan plan = planBudget(pilots, 10000, 3, 0.95);
    EXPECT_GE(plan.numRuns, 3u);
    EXPECT_LE(plan.numRuns * plan.runLength, 10000u);
    EXPECT_GT(plan.runLength, 0u);
    EXPECT_GT(plan.predictedHalfWidth, 0.0);
    EXPECT_FALSE(plan.toString().empty());
}

TEST(Budget, PureInvSqrtPrefersManyRuns)
{
    // With cov = a/sqrt(N) (b == 0), half-width ~ t_k * a /
    // sqrt(budget): nearly flat in the split, but the t factor
    // shrinks with more runs — the planner must not pick the
    // minimum run count.
    std::vector<std::pair<std::uint64_t, double>> pilots = {
        {100, 4.0}, {400, 2.0}, {1600, 1.0}};
    const BudgetPlan plan = planBudget(pilots, 20000, 3, 0.95);
    EXPECT_GT(plan.numRuns, 3u);
}

TEST(Budget, ConstantFloorPrefersLongRuns)
{
    // cov = 2.0 regardless of length: longer runs buy nothing, so
    // the planner should maximize the run count instead.
    std::vector<std::pair<std::uint64_t, double>> pilots = {
        {100, 2.0}, {400, 2.0}, {1600, 2.0}};
    const BudgetPlan plan = planBudget(pilots, 10000, 3, 0.95);
    EXPECT_GT(plan.numRuns, 20u);
}

TEST(Budget, PlanBeatsNaiveExtremesInPredictedWidth)
{
    std::vector<std::pair<std::uint64_t, double>> pilots = {
        {100, 5.0}, {400, 2.7}, {1600, 1.6}};
    const std::uint64_t budget = 8000;
    const BudgetPlan plan = planBudget(pilots, budget, 3, 0.95);

    auto width = [&](std::uint64_t len, std::size_t k) {
        // Same model the planner fits; evaluated directly.
        const double a = 48.0, b = 0.4; // approx fit of the pilots
        const double cov = a / std::sqrt(double(len)) + b;
        const double t =
            stats::tCriticalTwoSided(0.95, double(k - 1));
        return t * cov / std::sqrt(double(k));
    };
    const double extreme1 = width(budget / 3, 3);
    const double extreme2 = width(10, budget / 10);
    EXPECT_LE(plan.predictedHalfWidth,
              std::max(extreme1, extreme2) + 1e-9);
}

TEST(Budget, HalfWidthMonotoneInPilotCov)
{
    // Noisier pilots can only predict wider intervals: scaling every
    // pilot CoV by a constant scales the fitted a and b, and the
    // objective t * CoV / sqrt(k) is linear in them.
    double prev = 0.0;
    for (const double scale : {1.0, 2.0, 4.0, 8.0}) {
        std::vector<std::pair<std::uint64_t, double>> pilots = {
            {100, 5.0 * scale},
            {400, 2.7 * scale},
            {1600, 1.6 * scale}};
        const BudgetPlan plan = planBudget(pilots, 8000, 3, 0.95);
        EXPECT_GT(plan.predictedHalfWidth, prev)
            << "at pilot-CoV scale " << scale;
        prev = plan.predictedHalfWidth;
    }
}

TEST(DifferenceCI, BoundsKnownDifference)
{
    const std::vector<double> a = {10, 11, 12, 11, 10, 12};
    const std::vector<double> b = {7, 8, 9, 8, 7, 9};
    const auto ci = stats::differenceConfidenceInterval(a, b, 0.95);
    EXPECT_NEAR(ci.mean, 3.0, 1e-9);
    EXPECT_GT(ci.lo, 0.0) << "difference significantly positive";
    EXPECT_LT(ci.lo, 3.0);
    EXPECT_GT(ci.hi, 3.0);
}

TEST(DifferenceCI, SymmetricUnderSwap)
{
    const std::vector<double> a = {10, 12, 14};
    const std::vector<double> b = {9, 10, 11};
    const auto ab = stats::differenceConfidenceInterval(a, b, 0.9);
    const auto ba = stats::differenceConfidenceInterval(b, a, 0.9);
    EXPECT_NEAR(ab.mean, -ba.mean, 1e-12);
    EXPECT_NEAR(ab.lo, -ba.hi, 1e-12);
    EXPECT_NEAR(ab.hi, -ba.lo, 1e-12);
}

TEST(DifferenceCI, UnequalSizesUseWelch)
{
    const std::vector<double> a = {10, 12, 14, 16, 12};
    const std::vector<double> b = {9, 10, 11};
    const auto ci = stats::differenceConfidenceInterval(a, b, 0.95);
    EXPECT_GT(ci.halfWidth(), 0.0);
    EXPECT_NEAR(ci.mean, 12.8 - 10.0, 1e-9);
}

} // namespace
} // namespace core
} // namespace varsim
