/**
 * @file
 * Integration tests of the full simulation stack, checking the
 * properties the paper's methodology rests on:
 *
 *  1. the simulator is deterministic: same seed => bit-identical
 *     results (Section 2.3: "most simulators ... are deterministic");
 *  2. with the perturbation disabled, the seed does not matter at
 *     all — the injected randomness is the ONLY random input;
 *  3. distinct seeds expose genuine space variability (Section 3.3);
 *  4. checkpoints restore bit-exactly: two restores with the same
 *     seed agree, restores with different seeds diverge.
 */

#include <gtest/gtest.h>

#include "core/varsim.hh"

namespace varsim
{
namespace core
{
namespace
{

SystemConfig
smallSys(sim::Tick perturb = 4)
{
    SystemConfig sys = SystemConfig::testDefault();
    sys.mem.perturbMaxNs = perturb;
    return sys;
}

workload::WorkloadParams
smallOltp()
{
    workload::WorkloadParams wl;
    wl.kind = workload::WorkloadKind::Oltp;
    wl.threadsPerCpu = 4;
    return wl;
}

RunConfig
quickRun(std::uint64_t seed)
{
    RunConfig r;
    r.warmupTxns = 10;
    r.measureTxns = 40;
    r.perturbSeed = seed;
    return r;
}

TEST(Simulation, SameSeedIsBitIdentical)
{
    const RunResult a = runOnce(smallSys(), smallOltp(),
                                quickRun(7));
    const RunResult b = runOnce(smallSys(), smallOltp(),
                                quickRun(7));
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.cyclesPerTxn, b.cyclesPerTxn);
    EXPECT_EQ(a.mem.l2Misses, b.mem.l2Misses);
    EXPECT_EQ(a.os.dispatches, b.os.dispatches);
    EXPECT_EQ(a.cpu.instructions, b.cpu.instructions);
}

TEST(Simulation, DifferentSeedsDiverge)
{
    const RunResult a = runOnce(smallSys(), smallOltp(),
                                quickRun(1));
    const RunResult b = runOnce(smallSys(), smallOltp(),
                                quickRun(2));
    EXPECT_NE(a.runtimeTicks, b.runtimeTicks);
}

TEST(Simulation, NoPerturbationMeansNoVariability)
{
    // Section 3.3: the perturbation is the sole random input. With
    // perturbMaxNs = 0 every seed produces the same execution.
    const RunResult a = runOnce(smallSys(0), smallOltp(),
                                quickRun(1));
    const RunResult b = runOnce(smallSys(0), smallOltp(),
                                quickRun(999));
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.mem.l2Misses, b.mem.l2Misses);
    EXPECT_EQ(a.os.preemptions, b.os.preemptions);
}

TEST(Simulation, MeasuresRequestedTransactions)
{
    const RunResult r = runOnce(smallSys(), smallOltp(),
                                quickRun(3));
    EXPECT_EQ(r.txns, 40u);
    EXPECT_GT(r.runtimeTicks, 0u);
    EXPECT_GT(r.cyclesPerTxn, 0.0);
    EXPECT_FALSE(r.workloadEnded);
}

TEST(Simulation, MetricIsAggregateCyclesPerTxn)
{
    const RunResult r = runOnce(smallSys(), smallOltp(),
                                quickRun(3));
    EXPECT_DOUBLE_EQ(r.cyclesPerTxn,
                     static_cast<double>(r.runtimeTicks) * 4 /
                         static_cast<double>(r.txns));
}

TEST(Simulation, CollectsSubsystemStats)
{
    const RunResult r = runOnce(smallSys(), smallOltp(),
                                quickRun(3));
    EXPECT_GT(r.cpu.instructions, 0u);
    EXPECT_GT(r.mem.l1Hits, 0u);
    EXPECT_GT(r.mem.l2Misses, 0u);
    EXPECT_GT(r.os.dispatches, 0u);
    EXPECT_GT(r.os.lockAcquires, 0u);
    EXPECT_GT(r.mem.perturbationTotal, 0u);
}

TEST(Simulation, WindowsPartitionTheRun)
{
    RunConfig rc = quickRun(5);
    rc.measureTxns = 40;
    rc.windowTxns = 10;
    const RunResult r = runOnce(smallSys(), smallOltp(), rc);
    EXPECT_EQ(r.windows.size(), 4u);
    for (double w : r.windows)
        EXPECT_GT(w, 0.0);
}

TEST(Simulation, ScientificWorkloadRunsToCompletion)
{
    workload::WorkloadParams wl;
    wl.kind = workload::WorkloadKind::Barnes;
    RunConfig rc;
    rc.warmupTxns = 0;
    rc.measureTxns = 1;
    rc.perturbSeed = 1;
    const RunResult r = runOnce(smallSys(), wl, rc);
    EXPECT_EQ(r.txns, 1u);
    EXPECT_GT(r.runtimeTicks, 0u);
}

TEST(Simulation, DirectoryProtocolEndToEnd)
{
    SystemConfig sys = smallSys();
    sys.mem.protocol = mem::CoherenceProtocol::Directory;
    const RunResult a = runOnce(sys, smallOltp(), quickRun(7));
    const RunResult b = runOnce(sys, smallOltp(), quickRun(7));
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks)
        << "directory runs must be deterministic per seed";
    const RunResult c = runOnce(sys, smallOltp(), quickRun(8));
    EXPECT_NE(a.runtimeTicks, c.runtimeTicks)
        << "and diverge across seeds";
    EXPECT_GT(a.mem.cacheToCache, 0u);
}

TEST(Checkpoint, DirectoryProtocolRestoresBitExact)
{
    SystemConfig sys = smallSys();
    sys.mem.protocol = mem::CoherenceProtocol::Directory;
    Simulation simn(sys, smallOltp());
    simn.seedPerturbation(1);
    simn.runTransactions(30);
    const Checkpoint cp = simn.checkpoint();

    RunConfig rc;
    rc.measureTxns = 30;
    rc.perturbSeed = 42;
    const RunResult a = runFromCheckpoint(sys, smallOltp(), cp, rc);
    const RunResult b = runFromCheckpoint(sys, smallOltp(), cp, rc);
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.mem.l2Misses, b.mem.l2Misses);
}

TEST(Simulation, TotalTxnsAccumulates)
{
    Simulation simn(smallSys(), smallOltp());
    simn.seedPerturbation(1);
    simn.runTransactions(10);
    EXPECT_EQ(simn.totalTxns(), 10u);
    simn.runTransactions(15);
    EXPECT_EQ(simn.totalTxns(), 25u);
}

TEST(Checkpoint, RestoreIsBitExact)
{
    Simulation simn(smallSys(), smallOltp());
    simn.seedPerturbation(1);
    simn.runTransactions(30);
    const Checkpoint cp = simn.checkpoint();
    EXPECT_GT(cp.size(), 0u);

    RunConfig rc;
    rc.warmupTxns = 0;
    rc.measureTxns = 30;
    rc.perturbSeed = 42;
    const RunResult a =
        runFromCheckpoint(smallSys(), smallOltp(), cp, rc);
    const RunResult b =
        runFromCheckpoint(smallSys(), smallOltp(), cp, rc);
    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.mem.l2Misses, b.mem.l2Misses);
    EXPECT_EQ(a.os.dispatches, b.os.dispatches);
}

TEST(Checkpoint, DifferentSeedsDivergeFromSameCheckpoint)
{
    Simulation simn(smallSys(), smallOltp());
    simn.seedPerturbation(1);
    simn.runTransactions(30);
    const Checkpoint cp = simn.checkpoint();

    RunConfig a;
    a.measureTxns = 30;
    a.perturbSeed = 10;
    RunConfig b = a;
    b.perturbSeed = 11;
    EXPECT_NE(
        runFromCheckpoint(smallSys(), smallOltp(), cp, a)
            .runtimeTicks,
        runFromCheckpoint(smallSys(), smallOltp(), cp, b)
            .runtimeTicks);
}

TEST(Checkpoint, RestorePreservesProgress)
{
    Simulation simn(smallSys(), smallOltp());
    simn.seedPerturbation(1);
    simn.runTransactions(25);
    const Checkpoint cp = simn.checkpoint();
    // checkpoint() drains in-flight work, which advances time; the
    // checkpoint records the post-drain instant.
    const sim::Tick when = simn.now();

    auto restored =
        Simulation::restore(smallSys(), smallOltp(), cp);
    EXPECT_EQ(restored->totalTxns(), 25u);
    EXPECT_EQ(restored->now(), when);
}

TEST(Checkpoint, SimulationContinuesAfterCheckpointing)
{
    // checkpoint() must be non-destructive.
    Simulation simn(smallSys(), smallOltp());
    simn.seedPerturbation(1);
    simn.runTransactions(10);
    simn.checkpoint();
    const Simulation::Progress p = simn.runTransactions(10);
    EXPECT_EQ(p.txns, 10u);
}

TEST(Checkpoint, RestoreWithDifferentTimingConfig)
{
    // The space-variability experiment design: one warmed
    // checkpoint, restored under *different* cache configurations
    // (Figure 1: runs 1 and 2 differ in L2 associativity).
    Simulation simn(smallSys(), smallOltp());
    simn.seedPerturbation(1);
    simn.runTransactions(20);
    const Checkpoint cp = simn.checkpoint();

    SystemConfig direct = smallSys();
    direct.mem.l2Assoc = 1;
    RunConfig rc;
    rc.measureTxns = 20;
    rc.perturbSeed = 5;
    const RunResult r =
        runFromCheckpoint(direct, smallOltp(), cp, rc);
    EXPECT_EQ(r.txns, 20u);
}

TEST(Checkpoint, MismatchedWorkloadDies)
{
    Simulation simn(smallSys(), smallOltp());
    simn.seedPerturbation(1);
    simn.runTransactions(5);
    const Checkpoint cp = simn.checkpoint();

    workload::WorkloadParams other;
    other.kind = workload::WorkloadKind::Apache;
    EXPECT_DEATH(
        { auto r = Simulation::restore(smallSys(), other, cp); },
        "");
}

TEST(Experiment, RunManyIsOrderedAndDeterministic)
{
    ExperimentConfig exp;
    exp.numRuns = 3;
    exp.baseSeed = 100;
    exp.hostThreads = 2;
    const auto r1 = runMany(smallSys(), smallOltp(), quickRun(0),
                            exp);
    exp.hostThreads = 1;
    const auto r2 = runMany(smallSys(), smallOltp(), quickRun(0),
                            exp);
    ASSERT_EQ(r1.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(r1[i].runtimeTicks, r2[i].runtimeTicks)
            << "host parallelism must not change results";
    }
    // Distinct seeds => (almost surely) distinct results.
    EXPECT_NE(r1[0].runtimeTicks, r1[1].runtimeTicks);
}

TEST(Experiment, RunManyFromCheckpointSharesWarmup)
{
    Simulation simn(smallSys(), smallOltp());
    simn.seedPerturbation(1);
    simn.runTransactions(20);
    const Checkpoint cp = simn.checkpoint();

    ExperimentConfig exp;
    exp.numRuns = 3;
    RunConfig rc;
    rc.measureTxns = 20;
    const auto rs = runManyFromCheckpoint(smallSys(), smallOltp(),
                                          cp, rc, exp);
    ASSERT_EQ(rs.size(), 3u);
    for (const auto &r : rs)
        EXPECT_EQ(r.txns, 20u);
}

TEST(Experiment, MetricOfExtractsCyclesPerTxn)
{
    RunResult a, b;
    a.cyclesPerTxn = 1.0;
    b.cyclesPerTxn = 2.0;
    EXPECT_EQ(metricOf({a, b}), (std::vector<double>{1.0, 2.0}));
}

} // namespace
} // namespace core
} // namespace varsim
