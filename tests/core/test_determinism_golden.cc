/**
 * @file
 * Golden determinism pins: exact end-to-end results for a fixed set
 * of (workload, seed) pairs, including an order-sensitive hash of
 * the OS scheduling trace.
 *
 * These values are the regression oracle for every hot-path
 * optimization: the simulator's contract is that a (configuration,
 * workload, seed) triple produces bit-identical results on any host,
 * with any thread count, in any build type. An optimization that
 * changes any number below changed simulated behavior and is a bug
 * (or a deliberate model change, in which case this table must be
 * regenerated and the change called out in review).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "campaign/campaign.hh"
#include "core/varsim.hh"

namespace
{

using namespace varsim;

core::SystemConfig
goldenSys()
{
    core::SystemConfig sys = core::SystemConfig::testDefault();
    sys.mem.perturbMaxNs = 4; // exercise the perturbation path
    return sys;
}

workload::WorkloadParams
goldenWl(workload::WorkloadKind kind)
{
    workload::WorkloadParams wl;
    wl.kind = kind;
    wl.threadsPerCpu = 2; // oversubscribed: scheduler in play
    return wl;
}

core::RunConfig
goldenRun(std::uint64_t seed)
{
    core::RunConfig rc;
    rc.warmupTxns = 10;
    rc.measureTxns = 40;
    rc.perturbSeed = seed;
    return rc;
}

/** FNV-1a over the 8 little-endian bytes of @p v. */
std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

struct Golden
{
    workload::WorkloadKind kind;
    std::uint64_t seed;
    std::uint64_t runtimeTicks;
    std::uint64_t txns;
    std::uint64_t l2Misses;
    std::uint64_t dispatches;
    std::uint64_t instructions;
    std::uint64_t traceHash;
};

// Regenerate by running this same configuration and printing the
// fields (the table is the only thing that may change, never the
// harness around it).
const Golden goldenTable[] = {
    {workload::WorkloadKind::Oltp, 11ull, 186781ull, 40ull, 3948ull,
     43ull, 125432ull, 4213816009097953443ull},
    {workload::WorkloadKind::Oltp, 12ull, 191206ull, 40ull, 4000ull,
     46ull, 128712ull, 2780843790885583414ull},
    {workload::WorkloadKind::Apache, 11ull, 41655ull, 40ull, 1011ull,
     14ull, 32818ull, 2246365846492707887ull},
    {workload::WorkloadKind::Apache, 12ull, 43228ull, 40ull, 1008ull,
     18ull, 31370ull, 666379795687347554ull},
    {workload::WorkloadKind::SpecJbb, 11ull, 64913ull, 40ull,
     1745ull, 20ull, 46148ull, 10520078408481983755ull},
    {workload::WorkloadKind::SpecJbb, 12ull, 65083ull, 40ull,
     1748ull, 20ull, 46200ull, 5675638670245767231ull},
};

class GoldenDeterminism
    : public ::testing::TestWithParam<Golden>
{};

TEST_P(GoldenDeterminism, MatchesPinnedValues)
{
    const Golden &g = GetParam();
    const auto sys = goldenSys();
    core::Simulation simn(sys, goldenWl(g.kind));
    simn.seedPerturbation(g.seed);
    simn.kernel().enableTrace(1u << 20);
    const core::RunResult r =
        core::measure(simn, goldenRun(g.seed), sys.numCpus());

    EXPECT_EQ(r.runtimeTicks, g.runtimeTicks);
    EXPECT_EQ(r.txns, g.txns);
    EXPECT_EQ(r.mem.l2Misses, g.l2Misses);
    EXPECT_EQ(r.os.dispatches, g.dispatches);
    EXPECT_EQ(r.cpu.instructions, g.instructions);

    std::uint64_t h = 1469598103934665603ull;
    for (const auto &e : simn.kernel().traceEvents()) {
        h = fnv1a(h, e.when);
        h = fnv1a(h, static_cast<std::uint64_t>(e.cpu));
        h = fnv1a(h, static_cast<std::uint64_t>(e.thread));
        h = fnv1a(h, static_cast<std::uint64_t>(e.kind));
    }
    EXPECT_EQ(h, g.traceHash) << "scheduling trace diverged";
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, GoldenDeterminism, ::testing::ValuesIn(goldenTable),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(workload::kindName(info.param.kind)) +
               "_seed" + std::to_string(info.param.seed);
    });

// Host parallelism must not leak into results: the same experiment
// on 1 and on 4 host threads is element-wise identical.
TEST(GoldenDeterminism, HostThreadCountInvariant)
{
    const auto sys = goldenSys();
    const auto wl = goldenWl(workload::WorkloadKind::Oltp);
    const auto rc = goldenRun(0); // per-run seed set by runMany

    core::ExperimentConfig exp;
    exp.numRuns = 2;
    exp.baseSeed = 11;

    exp.hostThreads = 1;
    const auto serial = core::runMany(sys, wl, rc, exp);
    exp.hostThreads = 4;
    const auto parallel = core::runMany(sys, wl, rc, exp);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].runtimeTicks, parallel[i].runtimeTicks);
        EXPECT_EQ(serial[i].txns, parallel[i].txns);
        EXPECT_EQ(serial[i].mem.l2Misses,
                  parallel[i].mem.l2Misses);
        EXPECT_EQ(serial[i].cpu.instructions,
                  parallel[i].cpu.instructions);
    }
    // And the first run must equal the single-run golden pin.
    EXPECT_EQ(serial[0].runtimeTicks, goldenTable[0].runtimeTicks);
}

// A campaign killed mid-flight and resumed must land on the same
// pinned numbers as a direct run: durability (fsync + JSONL replay
// with %.17g doubles) must not perturb a single bit of the
// aggregate statistics.
TEST(GoldenDeterminism, CampaignResumeMatchesPinnedValues)
{
    campaign::CampaignSpec spec;
    spec.configs = {{"golden", goldenSys()}};
    spec.wl = goldenWl(workload::WorkloadKind::Oltp);
    spec.run = goldenRun(0); // per-cell seed set by the engine
    spec.baseSeed = 11;      // seeds 11, 12: the pinned pair
    spec.stop.fixedRuns = 2;

    const auto dir = (std::filesystem::temp_directory_path() /
                      "varsim_test_golden_resume.camp")
                         .string();
    std::filesystem::remove_all(dir);

    campaign::CampaignOptions opt;
    opt.hostThreads = 1;
    opt.interruptAfter = 1; // "kill" between the two runs
    const auto first = campaign::runCampaign(spec, dir, opt);
    ASSERT_TRUE(first.interrupted);
    const auto second = campaign::runCampaign(spec, dir);
    ASSERT_TRUE(second.complete);
    EXPECT_EQ(second.runsExecuted, 1u);

    // The replayed records must equal the golden pins for seeds 11
    // and 12 (goldenTable rows 0 and 1) exactly.
    auto store = campaign::ResultStore::open(dir);
    const auto recs = store->groupRuns(0);
    ASSERT_EQ(recs.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(recs[i].seed, goldenTable[i].seed);
        EXPECT_EQ(recs[i].runtimeTicks,
                  goldenTable[i].runtimeTicks);
        EXPECT_EQ(recs[i].txns, goldenTable[i].txns);
        // The stored metric is bitwise the live computation's.
        core::RunConfig rc = spec.run;
        rc.perturbSeed = goldenTable[i].seed;
        const auto live = core::runOnce(spec.configs[0].sys,
                                        spec.wl, rc);
        EXPECT_EQ(recs[i].cyclesPerTxn, live.cyclesPerTxn)
            << "metric double did not round-trip the store";
    }
}

// Restore-from-disk must not perturb a single bit either: a
// checkpointed campaign whose warm-ups come from the persistent
// checkpoint library lands on the same pinned record hash as one
// that re-simulated every warm-up in memory.
TEST(GoldenDeterminism, RestoreFromDiskCampaignMatchesPin)
{
    campaign::CampaignSpec spec;
    spec.configs = {{"golden", goldenSys()}};
    spec.wl = goldenWl(workload::WorkloadKind::Oltp);
    spec.run = goldenRun(0);
    spec.baseSeed = 11;
    spec.stop.fixedRuns = 2;
    spec.numCheckpoints = 2;
    spec.checkpointStep = 10;

    auto freshDir = [](const char *name) {
        const auto p = (std::filesystem::temp_directory_path() /
                        name)
                           .string();
        std::filesystem::remove_all(p);
        return p;
    };
    auto storeHash = [](const std::string &dir,
                        std::size_t groups) {
        auto store = campaign::ResultStore::open(dir);
        std::uint64_t h = 1469598103934665603ull;
        for (std::size_t g = 0; g < groups; ++g) {
            for (const auto &r : store->groupRuns(g)) {
                h = fnv1a(h, r.seed);
                std::uint64_t bits;
                static_assert(sizeof(bits) == sizeof(double));
                std::memcpy(&bits, &r.cyclesPerTxn, sizeof(bits));
                h = fnv1a(h, bits);
                h = fnv1a(h, r.runtimeTicks);
                h = fnv1a(h, r.txns);
            }
        }
        return h;
    };

    // In-memory warm-up.
    const auto plain = freshDir("varsim_test_golden_ckpt_mem.camp");
    campaign::runCampaign(spec, plain);

    // Library-backed: first fill the library, then a second store
    // whose every warm-up is restored from disk.
    campaign::CampaignOptions opt;
    opt.ckptDir = freshDir("varsim_test_golden_ckpt_lib.ckpt");
    const auto fill = freshDir("varsim_test_golden_ckpt_a.camp");
    campaign::runCampaign(spec, fill, opt);
    const auto disk = freshDir("varsim_test_golden_ckpt_b.camp");
    const auto outcome = campaign::runCampaign(spec, disk, opt);
    ASSERT_EQ(outcome.checkpointsRestored, 2u);
    ASSERT_EQ(outcome.checkpointsWarmed, 0u);

    const std::uint64_t memHash =
        storeHash(plain, spec.numGroups());
    EXPECT_EQ(storeHash(fill, spec.numGroups()), memHash);
    EXPECT_EQ(storeHash(disk, spec.numGroups()), memHash);

    // The pinned value: regenerate (and call out in review) only on
    // a deliberate model change.
    EXPECT_EQ(memHash, 13364864118009928777ull)
        << "golden ckpt-campaign hash moved";
}

} // namespace
