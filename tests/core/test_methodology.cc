/**
 * @file
 * Tests of the methodology layer (Section 5 as an API): variability
 * reports, configuration comparisons, sample-size advice, and the
 * ANOVA time-variability decision — on both synthetic numbers and
 * real (small) simulations.
 */

#include <gtest/gtest.h>

#include "core/varsim.hh"

namespace varsim
{
namespace core
{
namespace
{

TEST(Analysis, ReportMatchesSummary)
{
    const std::vector<double> xs = {90, 100, 110};
    const VariabilityReport r = analyze(xs);
    EXPECT_DOUBLE_EQ(r.summary.mean, 100.0);
    EXPECT_NEAR(r.coefficientOfVariation, 10.0, 1e-9);
    EXPECT_NEAR(r.rangeOfVariability, 20.0, 1e-9);
    EXPECT_NE(r.toString().find("CoV"), std::string::npos);
}

TEST(Analysis, CompareSeparatedConfigs)
{
    std::vector<double> slow, fast;
    for (int i = 0; i < 20; ++i) {
        slow.push_back(100.0 + i % 5);
        fast.push_back(80.0 + i % 5);
    }
    const ComparisonReport r = compare(slow, fast);
    EXPECT_TRUE(r.bIsBetter);
    EXPECT_EQ(r.wrongConclusionRatio, 0.0);
    EXPECT_FALSE(r.ciOverlap);
    EXPECT_LT(r.smallestRejectedAlpha, 0.01);
    EXPECT_NE(r.verdict().find("better"), std::string::npos);
}

TEST(Analysis, CompareOverlappingConfigsWarns)
{
    // Heavily overlapping samples: the methodology must refuse to
    // conclude.
    std::vector<double> a, b;
    for (int i = 0; i < 10; ++i) {
        a.push_back(100.0 + 7.0 * ((i * 13) % 10));
        b.push_back(101.0 + 7.0 * ((i * 17) % 10));
    }
    const ComparisonReport r = compare(a, b);
    EXPECT_TRUE(r.ciOverlap);
    EXPECT_GT(r.wrongConclusionRatio, 10.0);
    if (r.smallestRejectedAlpha >= 1.0) {
        EXPECT_NE(r.verdict().find("do not draw"),
                  std::string::npos);
    }
}

TEST(Analysis, CompareDirectionAgnostic)
{
    const std::vector<double> a = {10, 11, 12, 11};
    const std::vector<double> b = {20, 21, 22, 21};
    const ComparisonReport r1 = compare(a, b);
    const ComparisonReport r2 = compare(b, a);
    EXPECT_FALSE(r1.bIsBetter); // a is faster
    EXPECT_TRUE(r2.bIsBetter);
    EXPECT_DOUBLE_EQ(r1.wrongConclusionRatio,
                     r2.wrongConclusionRatio);
    EXPECT_NEAR(r1.ttest.statistic, r2.ttest.statistic, 1e-12);
}

TEST(Analysis, RecommendRunsIsMonotoneInAlpha)
{
    std::vector<double> a, b;
    for (int i = 0; i < 10; ++i) {
        a.push_back(100.0 + (i % 4));
        b.push_back(98.0 + (i % 4));
    }
    const std::size_t n10 = recommendRuns(a, b, 0.10);
    const std::size_t n01 = recommendRuns(a, b, 0.01);
    EXPECT_LE(n10, n01);
    EXPECT_GE(n10, 2u);
}

TEST(Analysis, RecommendRunsHugeWhenIndistinguishable)
{
    const std::vector<double> a = {10, 11, 10, 11};
    EXPECT_GE(recommendRuns(a, a, 0.05), 1000u);
}

TEST(Analysis, AnovaDecisionOnSyntheticGroups)
{
    // Distinct group means: need multiple checkpoints.
    const TimeVariabilityReport sig = checkpointAnova(
        {{10, 11, 10, 11}, {20, 21, 20, 21}, {30, 31, 30, 31}});
    EXPECT_TRUE(sig.needMultipleCheckpoints);
    EXPECT_NE(sig.toString().find("multiple starting points"),
              std::string::npos);

    // Identical distributions: one checkpoint suffices.
    const TimeVariabilityReport insig = checkpointAnova(
        {{10, 11, 12, 13}, {13, 12, 11, 10}, {11, 13, 10, 12}});
    EXPECT_FALSE(insig.needMultipleCheckpoints);
}

// ---- end-to-end methodology on real simulations ----

SystemConfig
sys4(std::size_t l2_assoc = 4)
{
    SystemConfig sys = SystemConfig::testDefault();
    sys.mem.l2Assoc = l2_assoc;
    return sys;
}

workload::WorkloadParams
oltp4()
{
    workload::WorkloadParams wl;
    wl.threadsPerCpu = 4;
    return wl;
}

TEST(EndToEnd, OltpExhibitsSpaceVariability)
{
    RunConfig rc;
    rc.warmupTxns = 20;
    rc.measureTxns = 60;
    ExperimentConfig exp;
    exp.numRuns = 8;
    const auto results = runMany(sys4(), oltp4(), rc, exp);
    const VariabilityReport r = analyze(results);
    EXPECT_GT(r.coefficientOfVariation, 0.1)
        << "perturbed runs should spread";
    EXPECT_LT(r.coefficientOfVariation, 25.0)
        << "but not absurdly";
    EXPECT_GT(r.rangeOfVariability, r.coefficientOfVariation);
}

TEST(EndToEnd, LongerRunsReduceVariability)
{
    // Table 4's property, on the full 16-CPU paper target where the
    // transaction-quantization effect is pronounced: the CoV of
    // very short measurements must exceed the CoV of 10x longer
    // ones (paper: 3.27% at 200 txns vs 0.98% at 1000).
    ExperimentConfig exp;
    exp.numRuns = 10;
    const SystemConfig sys; // paper 16-CPU target
    const workload::WorkloadParams wl;
    RunConfig shortRun;
    shortRun.warmupTxns = 50;
    shortRun.measureTxns = 25;
    RunConfig longRun;
    longRun.warmupTxns = 50;
    longRun.measureTxns = 250;

    const auto shortR = analyze(runMany(sys, wl, shortRun, exp));
    const auto longR = analyze(runMany(sys, wl, longRun, exp));
    EXPECT_GT(shortR.coefficientOfVariation,
              longR.coefficientOfVariation);
}

TEST(EndToEnd, CompareRealExperimentsProducesSaneWcr)
{
    RunConfig rc;
    rc.warmupTxns = 20;
    rc.measureTxns = 40;
    ExperimentConfig exp;
    exp.numRuns = 6;
    const auto a = runMany(sys4(1), oltp4(), rc, exp); // DM
    ExperimentConfig exp2 = exp;
    exp2.baseSeed = 2000;
    const auto b = runMany(sys4(4), oltp4(), rc, exp2); // 4-way
    const ComparisonReport r = compare(a, b);
    EXPECT_GE(r.wrongConclusionRatio, 0.0);
    EXPECT_LE(r.wrongConclusionRatio, 100.0);
    EXPECT_FALSE(r.toString().empty());
}

} // namespace
} // namespace core
} // namespace varsim
