/**
 * @file
 * Randomized stress for the adaptive-horizon round protocol, and the
 * ThreadSanitizer workhorse for the engine: random topologies fire
 * message storms with randomized (but sound-by-construction) reach
 * annotations, interrupted by stop/resume cycles that flip serial
 * rounds mid-run. Every configuration must dispatch identically for
 * every worker count — the same contract test_parallel_golden pins
 * on the full simulator, exercised here on topologies and traffic
 * shapes the simulator never generates.
 *
 * Soundness by construction: each storm actor carries the
 * `otherDelay` its event was annotated with and only sends at least
 * that far past its own tick, so the horizon bounds the scheduler
 * derives are honored no matter what the RNG draws. Each domain owns
 * a private RNG consumed only by that domain's events (which execute
 * in a deterministic order), keeping the whole storm a pure function
 * of the seed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "sim/domains.hh"

namespace varsim
{
namespace sim
{
namespace
{

struct StormTopology
{
    StormTopology(std::size_t domains, Tick lookahead)
    {
        for (std::size_t i = 0; i < domains; ++i)
            ptrs.push_back(&owned.emplace_back());
        router.emplace(ptrs, lookahead);
    }

    std::deque<EventQueue> owned;
    std::vector<EventQueue *> ptrs;
    std::optional<DomainRouter> router;
};

/** Per-domain log entry: (tick, actor id) at dispatch. */
using Log = std::vector<std::pair<Tick, std::uint32_t>>;

class Storm
{
  public:
    Storm(std::uint64_t seed, std::size_t domains, Tick lookahead,
          std::size_t workers)
        : topo_(domains, lookahead),
          sched_(topo_.ptrs, *topo_.router, workers), logs_(domains),
          rngs_(domains)
    {
        for (std::size_t d = 0; d < domains; ++d)
            rngs_[d].seed(seed * 1000003ull + d);

        // Seed actors: a few per domain, staggered start ticks,
        // mixed hop budgets so some chains die early and some run
        // the whole storm.
        std::mt19937_64 init(seed);
        for (std::size_t d = 0; d < domains; ++d) {
            const int actors = 1 + static_cast<int>(init() % 3);
            for (int a = 0; a < actors; ++a) {
                const Tick start = 1 + init() % 40;
                const int budget = 4 + static_cast<int>(init() % 24);
                const Tick declared = init() % 16;
                scheduleActor(static_cast<DomainId>(d), start,
                              budget, declared);
            }
        }

        // Stop events: domain 0 interrupts the run at a few points;
        // the driver flips serial rounds at each and resumes.
        const int stops = 2 + static_cast<int>(init() % 3);
        for (int s = 0; s < stops; ++s) {
            const Tick when = 20 + init() % 300;
            DomainScheduler *sc = &sched_;
            topo_.owned[0].callAt(when, [sc] { sc->requestStop(); });
        }
    }

    void
    drive(bool flipSerial = true)
    {
        bool serial = false;
        for (;;) {
            sched_.run();
            if (sched_.idle())
                return;
            // Stopped mid-storm: flip the round mode between rounds
            // (the only legal place) and resume.
            if (flipSerial) {
                serial = !serial;
                sched_.setSerialRounds(serial);
            }
            sched_.clearStop();
        }
    }

    const std::vector<Log> &logs() const { return logs_; }
    const DomainScheduler &sched() const { return sched_; }

  private:
    /**
     * Schedule one actor event in @p d at @p when, annotated with
     * @p declared ticks of cross-domain send delay. The actor honors
     * the declaration when it runs.
     */
    void
    scheduleActor(DomainId d, Tick when, int budget, Tick declared)
    {
        Storm *self = this;
        topo_.owned[d].callAt(
            when,
            [self, d, budget, declared] {
                self->act(d, budget, declared);
            },
            Event::defaultPri,
            SendReach{SendReach::noDomain, 0, declared});
    }

    void
    act(DomainId d, int budget, Tick declared)
    {
        EventQueue &q = topo_.owned[d];
        logs_[d].push_back({q.curTick(), nextId_[d]++});
        if (budget <= 0)
            return;

        std::mt19937_64 &rng = rngs_[d];
        const std::size_t n = topo_.owned.size();

        // 0-2 cross-domain messages, never sooner than the reach
        // this event declared when it was scheduled.
        const int sends = static_cast<int>(rng() % 3);
        for (int s = 0; s < sends; ++s) {
            DomainId dst = static_cast<DomainId>(rng() % n);
            if (dst == d)
                dst = static_cast<DomainId>((d + 1) % n);
            const Tick la = topo_.router->laneLookahead(d, dst);
            const Tick childDeclared = rng() % 16;
            const Tick when =
                q.curTick() + declared + la + rng() % 25;
            Storm *self = this;
            const int childBudget = budget - 1;
            topo_.router->send(
                d, dst, when, Event::defaultPri,
                SendReach{SendReach::noDomain, 0, childDeclared},
                [self, dst, childBudget, childDeclared] {
                    self->act(dst, childBudget, childDeclared);
                });
        }

        // Maybe a local follow-up, re-drawing the declared reach.
        if (rng() % 2 == 0) {
            scheduleActor(d, q.curTick() + 1 + rng() % 12,
                          budget - 1, rng() % 16);
        }
    }

    StormTopology topo_;
    DomainScheduler sched_;
    std::vector<Log> logs_;
    std::vector<std::mt19937_64> rngs_;
    /** One id counter per domain (sized after logs_ initializes). */
    std::vector<std::uint32_t> nextId_ =
        std::vector<std::uint32_t>(logs_.size());
};

TEST(ParallelStress, RandomStormsIdenticalAcrossWorkerCounts)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const std::size_t domains = 2 + seed % 7;
        const Tick lookahead = 3 + seed % 9;

        std::vector<Log> reference;
        std::uint64_t refRounds = 0;
        for (std::size_t workers : {1u, 2u, 4u}) {
            Storm storm(seed, domains, lookahead, workers);
            storm.drive();
            std::size_t hops = 0;
            for (const Log &log : storm.logs())
                hops += log.size();
            EXPECT_GT(hops, 0u) << "seed=" << seed;
            if (reference.empty()) {
                reference = storm.logs();
                refRounds = storm.sched().rounds();
            } else {
                EXPECT_EQ(storm.logs(), reference)
                    << "seed=" << seed << " workers=" << workers;
                // Round structure is simulated state, not host
                // state: it must not see the worker count either.
                EXPECT_EQ(storm.sched().rounds(), refRounds)
                    << "seed=" << seed << " workers=" << workers;
            }
        }
    }
}

TEST(ParallelStress, SerialFlipsPreserveDispatch)
{
    // The same storm driven with and without mid-run serial-round
    // flips must dispatch identically: fusion changes who executes a
    // round, never what the round does.
    auto runFlipped = [](bool flips) {
        Storm storm(9, /*domains=*/5, /*lookahead=*/6,
                    /*workers=*/2);
        storm.drive(flips);
        return storm.logs();
    };
    EXPECT_EQ(runFlipped(true), runFlipped(false));
}

} // anonymous namespace
} // namespace sim
} // namespace varsim
