/**
 * @file
 * TaskQueue tests: FIFO draining, stop() semantics (queued tasks
 * discarded, late posts dropped, running tasks finish), exception
 * containment, and the pending/running counters the serve
 * scheduler's fair-share logic leans on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/task_queue.hh"

namespace
{

using namespace varsim;

TEST(TaskQueue, DrainRunsEverythingPosted)
{
    core::TaskQueue q(4);
    EXPECT_EQ(q.workerCount(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        q.post([&] { ++ran; });
    q.drain();
    EXPECT_EQ(ran.load(), 100);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.running(), 0u);

    // drain() is reusable: the queue keeps accepting afterwards.
    q.post([&] { ++ran; });
    q.drain();
    EXPECT_EQ(ran.load(), 101);
}

TEST(TaskQueue, SingleWorkerPreservesFifoOrder)
{
    core::TaskQueue q(1);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.post([&order, i] { order.push_back(i); });
    q.drain();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(TaskQueue, StopDiscardsQueuedButFinishesRunning)
{
    core::TaskQueue q(1);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false, started = false;
    std::atomic<int> ran{0};

    // First task blocks the sole worker; the rest queue behind it.
    q.post([&] {
        std::unique_lock<std::mutex> lock(mu);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
        ++ran;
    });
    for (int i = 0; i < 50; ++i)
        q.post([&] { ++ran; });
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return started; });
        EXPECT_GE(q.pending(), 49u);
        release = true;
        cv.notify_all();
    }
    q.stop();
    // The running task completed; the queued ones were discarded
    // (the worker may have started a few before stop() landed).
    EXPECT_GE(ran.load(), 1);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.running(), 0u);

    // Posts after stop() are silently dropped.
    q.post([&] { ran += 1000; });
    q.drain();
    EXPECT_LT(ran.load(), 1000);

    q.stop(); // idempotent
}

TEST(TaskQueue, ThrowingTaskDoesNotKillTheWorker)
{
    core::TaskQueue q(1);
    std::atomic<int> ran{0};
    q.post([] { throw std::runtime_error("tenant bug"); });
    q.post([&] { ++ran; });
    q.drain();
    EXPECT_EQ(ran.load(), 1);
}

TEST(TaskQueue, TasksMayPostMoreTasks)
{
    // The serve scheduler's refill does exactly this: a completing
    // cell posts the next round's tokens from inside a task.
    core::TaskQueue q(2);
    std::atomic<int> ran{0};
    std::function<void(int)> chain = [&](int depth) {
        ++ran;
        if (depth > 0)
            q.post([&chain, depth] { chain(depth - 1); });
    };
    q.post([&chain] { chain(20); });
    // drain() waits for the transitively posted work too.
    using namespace std::chrono;
    const auto deadline = steady_clock::now() + seconds(10);
    while (ran.load() < 21 && steady_clock::now() < deadline)
        q.drain();
    EXPECT_EQ(ran.load(), 21);
}

} // namespace
