/**
 * @file
 * Host thread pool: scheduling, exception propagation, reuse.
 *
 * The historical bug being pinned here: a job exception thrown on a
 * pool thread used to escape the thread's start function and
 * std::terminate the whole process. The pool must instead capture
 * the first exception, cancel unclaimed work, rethrow on the caller
 * and remain usable.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/experiment.hh"
#include "core/thread_pool.hh"

namespace
{

using varsim::core::HostThreadPool;

TEST(HostThreadPool, RunsEveryIndexExactlyOnce)
{
    const std::size_t n = 100;
    std::vector<std::atomic<int>> hits(n);
    HostThreadPool::instance().parallelFor(
        n, 4, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(HostThreadPool, SingleWorkerRunsInline)
{
    // With one worker the calling thread does everything, in order.
    std::vector<std::size_t> order;
    HostThreadPool::instance().parallelFor(
        5, 1, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(HostThreadPool, PropagatesJobException)
{
    EXPECT_THROW(
        HostThreadPool::instance().parallelFor(
            8, 4,
            [](std::size_t i) {
                if (i == 3)
                    throw std::runtime_error("job 3 failed");
            }),
        std::runtime_error);
}

TEST(HostThreadPool, ExceptionCancelsUnclaimedWork)
{
    // Serial path: job 0 throws, so of 100 jobs only a handful (the
    // ones already claimed by concurrent workers) may still run.
    std::atomic<std::size_t> ran{0};
    try {
        HostThreadPool::instance().parallelFor(
            100, 2, [&](std::size_t i) {
                if (i == 0)
                    throw std::runtime_error("first job failed");
                ++ran;
            });
        FAIL() << "exception did not propagate";
    } catch (const std::runtime_error &) {
    }
    // At most the other worker's in-flight job ran per thread; the
    // bulk of the queue must have been cancelled.
    EXPECT_LT(ran.load(), std::size_t{100});
}

TEST(HostThreadPool, UsableAfterException)
{
    auto &pool = HostThreadPool::instance();
    EXPECT_THROW(pool.parallelFor(4, 4,
                                  [](std::size_t) {
                                      throw std::logic_error("boom");
                                  }),
                 std::logic_error);

    std::atomic<std::size_t> sum{0};
    pool.parallelFor(10, 4, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), std::size_t{45});
}

TEST(HostThreadPool, ConcurrentIndicesAreDisjoint)
{
    // Each index is claimed exactly once even under heavy worker
    // contention; collect them under a mutex and check the set.
    std::mutex mu;
    std::set<std::size_t> seen;
    HostThreadPool::instance().parallelFor(
        500, 8, [&](std::size_t i) {
            std::lock_guard<std::mutex> lk(mu);
            EXPECT_TRUE(seen.insert(i).second)
                << "index " << i << " ran twice";
        });
    EXPECT_EQ(seen.size(), std::size_t{500});
}

// End to end: a workload that fails validation inside a pooled run
// must surface as an exception from runMany on the caller, not as
// std::terminate on a pool thread.
TEST(RunManyExceptions, ThrowingWorkloadPropagates)
{
    varsim::core::SystemConfig sys =
        varsim::core::SystemConfig::testDefault();
    varsim::workload::WorkloadParams wl;
    wl.kind = varsim::workload::WorkloadKind::Oltp;
    wl.scale = -1.0; // invalid: Workload::build throws

    varsim::core::RunConfig rc;
    rc.warmupTxns = 0;
    rc.measureTxns = 10;

    varsim::core::ExperimentConfig exp;
    exp.numRuns = 4;
    exp.baseSeed = 1;
    exp.hostThreads = 4;

    EXPECT_THROW(varsim::core::runMany(sys, wl, rc, exp),
                 std::invalid_argument);

    // The serial path throws the same way.
    exp.hostThreads = 1;
    EXPECT_THROW(varsim::core::runMany(sys, wl, rc, exp),
                 std::invalid_argument);
}

TEST(RunManyBatch, MatchesPerSpecRunMany)
{
    varsim::core::SystemConfig sysA =
        varsim::core::SystemConfig::testDefault();
    varsim::core::SystemConfig sysB = sysA;
    sysB.mem.l2Assoc = 8;

    varsim::workload::WorkloadParams wl;
    wl.kind = varsim::workload::WorkloadKind::Apache;
    wl.threadsPerCpu = 2;

    varsim::core::RunConfig rc;
    rc.warmupTxns = 5;
    rc.measureTxns = 20;

    varsim::core::ExperimentConfig exp;
    exp.numRuns = 3;
    exp.baseSeed = 42;
    exp.hostThreads = 4;

    const auto batched = varsim::core::runManyBatch(
        {{sysA, wl, rc, exp}, {sysB, wl, rc, exp}});
    const auto plainA = varsim::core::runMany(sysA, wl, rc, exp);
    const auto plainB = varsim::core::runMany(sysB, wl, rc, exp);

    ASSERT_EQ(batched.size(), std::size_t{2});
    ASSERT_EQ(batched[0].size(), plainA.size());
    ASSERT_EQ(batched[1].size(), plainB.size());
    for (std::size_t i = 0; i < plainA.size(); ++i) {
        EXPECT_EQ(batched[0][i].runtimeTicks,
                  plainA[i].runtimeTicks);
        EXPECT_EQ(batched[0][i].txns, plainA[i].txns);
    }
    for (std::size_t i = 0; i < plainB.size(); ++i) {
        EXPECT_EQ(batched[1][i].runtimeTicks,
                  plainB[i].runtimeTicks);
        EXPECT_EQ(batched[1][i].txns, plainB[i].txns);
    }
}

} // namespace
