/**
 * @file
 * End-to-end tests of the per-run metrics export: the registry dump
 * is byte-stable across identical runs, collecting it is
 * timing-neutral (the golden pins hold with stats dumped, and
 * dumping never advances a tick), its values agree with the harness's
 * own aggregate counters, and the host profile is populated.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/varsim.hh"
#include "sim/jsonl.hh"

namespace
{

using namespace varsim;

core::SystemConfig
exportSys()
{
    core::SystemConfig sys = core::SystemConfig::testDefault();
    sys.mem.perturbMaxNs = 4;
    return sys;
}

workload::WorkloadParams
exportWl()
{
    workload::WorkloadParams wl;
    wl.kind = workload::WorkloadKind::Oltp;
    wl.threadsPerCpu = 2;
    return wl;
}

core::RunConfig
exportRun(std::uint64_t seed)
{
    core::RunConfig rc;
    rc.warmupTxns = 10;
    rc.measureTxns = 40;
    rc.perturbSeed = seed;
    return rc;
}

TEST(StatsExport, JsonlIsByteStableAcrossIdenticalRuns)
{
    const auto sys = exportSys();
    const auto a = core::runOnce(sys, exportWl(), exportRun(11));
    const auto b = core::runOnce(sys, exportWl(), exportRun(11));
    ASSERT_FALSE(a.stats.empty());
    EXPECT_EQ(a.statsJsonl(), b.statsJsonl());
}

TEST(StatsExport, DumpIsPureAndTickNeutral)
{
    const auto sys = exportSys();
    core::Simulation simn(sys, exportWl());
    simn.seedPerturbation(11);
    simn.runTransactions(20);

    const sim::Tick before = simn.now();
    const auto d1 = simn.statsRegistry().dump();
    const auto d2 = simn.statsRegistry().dump();
    EXPECT_EQ(simn.now(), before)
        << "dump() advanced simulated time";
    EXPECT_EQ(sim::statistics::toJsonl(d1),
              sim::statistics::toJsonl(d2))
        << "dump() perturbed its own next dump";
}

TEST(StatsExport, GoldenPinsHoldWithStatsCollected)
{
    // The seed-11 Oltp golden pins from test_determinism_golden.cc:
    // taking the registry dump is observation only, so the pinned
    // simulated results must be bitwise unchanged.
    const auto sys = exportSys();
    const auto r = core::runOnce(sys, exportWl(), exportRun(11));
    EXPECT_EQ(r.runtimeTicks, 186781ull);
    EXPECT_EQ(r.txns, 40ull);
    EXPECT_EQ(r.mem.l2Misses, 3948ull);
    EXPECT_EQ(r.os.dispatches, 43ull);
    EXPECT_EQ(r.cpu.instructions, 125432ull);
    ASSERT_FALSE(r.stats.empty());
}

TEST(StatsExport, DumpAgreesWithHarnessCounters)
{
    const auto sys = exportSys();
    const auto r = core::runOnce(sys, exportWl(), exportRun(11));

    sim::JsonLine line;
    ASSERT_TRUE(line.parse(r.statsJsonl()));

    // Registry values are the same counters the harness aggregates.
    EXPECT_EQ(line.real("system.mem.bus.l2_misses"),
              static_cast<double>(r.mem.l2Misses));
    EXPECT_EQ(line.real("system.kernel.dispatches"),
              static_cast<double>(r.os.dispatches));
    EXPECT_EQ(line.real("system.kernel.transactions"),
              static_cast<double>(r.os.transactions));

    double instrs = 0.0;
    for (std::size_t c = 0; c < sys.numCpus(); ++c)
        instrs += line.real(
            sim::format("system.cpu%zu.instructions", c));
    EXPECT_EQ(instrs, static_cast<double>(r.cpu.instructions));

    // Sim-level formulas.
    EXPECT_EQ(line.real("sim.txns"),
              static_cast<double>(r.txns + 10)); // warmup + measure
    EXPECT_GT(line.real("sim.ticks"), 0.0);
    EXPECT_GT(line.real("sim.events_dispatched"), 0.0);

    // Distribution expansion made it through the pipeline.
    EXPECT_GT(line.real("system.mem.bus.queue_delay.count"), 0.0);
    EXPECT_GE(line.real("system.mem.bus.queue_delay.max"),
              line.real("system.mem.bus.queue_delay.min"));
}

TEST(StatsExport, EverySimObjectContributes)
{
    const auto sys = exportSys();
    core::Simulation simn(sys, exportWl());
    const auto &reg = simn.statsRegistry();
    // One representative metric per registered SimObject family.
    EXPECT_TRUE(reg.has("system.mem.bus.transactions"));
    EXPECT_TRUE(reg.has("system.mem.node0.l2.hits"));
    EXPECT_TRUE(reg.has("system.mem.node0.l1i.misses"));
    EXPECT_TRUE(reg.has("system.mem.node0.l1d.miss_ratio"));
    EXPECT_TRUE(reg.has("system.mem.l1_miss_ratio"));
    EXPECT_TRUE(reg.has("system.cpu0.instructions"));
    EXPECT_TRUE(reg.has("system.kernel.lock_acquires"));
    EXPECT_TRUE(reg.has("sim.ticks"));
}

TEST(StatsExport, MetricOfByNameAndAnalyze)
{
    const auto sys = exportSys();
    core::ExperimentConfig exp;
    exp.numRuns = 3;
    exp.baseSeed = 11;
    exp.hostThreads = 1;
    const auto results =
        core::runMany(sys, exportWl(), exportRun(0), exp);

    const auto misses =
        core::metricOf(results, "system.mem.bus.l2_misses");
    ASSERT_EQ(misses.size(), 3u);
    EXPECT_EQ(misses[0],
              static_cast<double>(results[0].mem.l2Misses));

    // Built-ins resolve without touching the dump.
    const auto cpt = core::metricOf(results, "cycles_per_txn");
    EXPECT_EQ(cpt, core::metricOf(results));

    const auto rep =
        core::analyze(results, "system.mem.bus.l2_misses");
    EXPECT_EQ(rep.summary.n, 3u);
    EXPECT_FALSE(std::isnan(rep.coefficientOfVariation));
}

TEST(StatsExport, HostProfileIsPopulated)
{
    const auto sys = exportSys();
    const auto r = core::runOnce(sys, exportWl(), exportRun(11));
    EXPECT_GT(r.host.eventsDispatched, 0u);
    EXPECT_GE(r.host.warmupWallSec, 0.0);
    EXPECT_GT(r.host.measureWallSec, 0.0);
    EXPECT_GT(r.host.eventsPerSec, 0.0);
    EXPECT_GT(r.host.hostMips, 0.0);
}

} // anonymous namespace
