/**
 * @file
 * Sampling accuracy suite: the confidence-bounded estimates of a
 * sampled run must cover the full-detail answer for the same
 * (configuration, seed) at roughly the stated confidence, and the
 * point estimates must land within a small relative error.
 *
 * The full-detail reference for a seed is itself computed through
 * the controller as a single all-detail window (U = M, W = 0, no
 * fast-forward, no mode switches): that measures exactly the same
 * phase of the run with exactly the same boundary convention as the
 * sampled estimate, so the comparison is estimator-vs-population,
 * not phase-vs-phase.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/varsim.hh"
#include "sample/runner.hh"

namespace
{

using namespace varsim;

core::SystemConfig
accuracySys()
{
    core::SystemConfig sys = core::SystemConfig::testDefault();
    sys.mem.perturbMaxNs = 4;
    return sys;
}

workload::WorkloadParams
accuracyWl(workload::WorkloadKind kind)
{
    workload::WorkloadParams wl;
    wl.kind = kind;
    wl.threadsPerCpu = 2;
    return wl;
}

core::RunResult
runWith(const workload::WorkloadParams &wl, const char *spec,
        std::uint64_t txns, std::uint64_t seed)
{
    core::RunConfig rc;
    rc.warmupTxns = 50;
    rc.measureTxns = txns;
    rc.perturbSeed = seed;
    EXPECT_TRUE(core::SampleConfig::parse(spec, rc.sample));
    return sample::runOnce(accuracySys(), wl, rc);
}

struct Coverage
{
    int ipcIn = 0;
    int missIn = 0;
    int n = 0;
    double worstIpcErr = 0.0; ///< relative, absolute value
};

Coverage
sweep(workload::WorkloadKind kind, const char *spec,
      std::uint64_t txns, int seeds)
{
    const auto wl = accuracyWl(kind);
    // One full-detail window spanning the whole measure phase: the
    // exact population value for this seed.
    const std::string refSpec =
        "systematic:" + std::to_string(txns) + ":0:" +
        std::to_string(txns);

    Coverage cov;
    for (int s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 100 + s;
        const auto ref = runWith(wl, refSpec.c_str(), txns, seed);
        EXPECT_EQ(ref.sampled.windows, 1u);
        EXPECT_EQ(ref.sampled.fastTxns, 0u);
        const double ipcF = ref.sampled.ipcMean;
        const double missF = ref.sampled.l2MissMean;

        const auto r = runWith(wl, spec, txns, seed);
        const auto &ss = r.sampled;
        EXPECT_GE(ss.windows, 2u) << spec;
        cov.ipcIn += (ipcF >= ss.ipcLo && ipcF <= ss.ipcHi);
        cov.missIn +=
            (missF >= ss.l2MissLo && missF <= ss.l2MissHi);
        ++cov.n;
        cov.worstIpcErr = std::max(
            cov.worstIpcErr, std::abs(ss.ipcMean - ipcF) / ipcF);
    }
    return cov;
}

// OLTP, the paper's headline workload: 95% intervals from ~10
// windows per run must cover the full-detail value for at least
// 9 of 10 seeds, and the point estimate must stay within 5%.
TEST(SamplingAccuracy, OltpStratifiedCoversFullDetailReference)
{
    const Coverage cov = sweep(workload::WorkloadKind::Oltp,
                               "stratified:100:15:25", 1000, 10);
    EXPECT_GE(cov.ipcIn, 9) << "IPC coverage " << cov.ipcIn << "/"
                            << cov.n;
    EXPECT_GE(cov.missIn, 9) << "L2-miss coverage " << cov.missIn
                             << "/" << cov.n;
    EXPECT_LT(cov.worstIpcErr, 0.05);
}

// The matched-pair design measures seed-independent windows; its
// estimates must be just as accurate as stratified ones.
TEST(SamplingAccuracy, OltpMatchedPairCoversFullDetailReference)
{
    const Coverage cov = sweep(workload::WorkloadKind::Oltp,
                               "matched:100:15:25", 1000, 8);
    EXPECT_GE(cov.ipcIn, 7);
    EXPECT_GE(cov.missIn, 7);
    EXPECT_LT(cov.worstIpcErr, 0.05);
}

// A second commercial workload with a different sharing profile.
TEST(SamplingAccuracy, SpecJbbStratifiedCoversFullDetailReference)
{
    const Coverage cov = sweep(workload::WorkloadKind::SpecJbb,
                               "stratified:100:15:25", 1000, 8);
    EXPECT_GE(cov.ipcIn, 7);
    EXPECT_GE(cov.missIn, 7);
    EXPECT_LT(cov.worstIpcErr, 0.05);
}

// Scientific workloads complete in one transaction, so the sampled
// run degrades to full detail: zero error by construction, across
// every seed.
TEST(SamplingAccuracy, ScientificFallbackIsExactAcrossSeeds)
{
    const auto sys = accuracySys();
    for (auto kind : {workload::WorkloadKind::Barnes,
                      workload::WorkloadKind::Ocean}) {
        const auto wl = accuracyWl(kind);
        for (std::uint64_t seed = 100; seed < 105; ++seed) {
            core::RunConfig rc;
            rc.warmupTxns = 0;
            rc.measureTxns = 0; // workload default (1 txn)
            rc.perturbSeed = seed;
            EXPECT_TRUE(core::SampleConfig::parse(
                "stratified:100:15:25", rc.sample));
            const auto r = sample::runOnce(sys, wl, rc);

            core::RunConfig full = rc;
            full.sample = core::SampleConfig{};
            const auto ref = core::runOnce(sys, wl, full);

            EXPECT_TRUE(r.sampled.fullDetailFallback);
            EXPECT_EQ(r.runtimeTicks, ref.runtimeTicks);
            EXPECT_NEAR(r.sampled.cptMean, ref.cyclesPerTxn,
                        1e-9 * ref.cyclesPerTxn);
        }
    }
}

} // anonymous namespace
