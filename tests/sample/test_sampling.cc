/**
 * @file
 * Sampling engine unit and determinism tests: SampleConfig parsing,
 * the drop-in (disabled) guarantee against the legacy golden pins,
 * the controller's edge rules (runs shorter than one period,
 * workloads that outrun the budget), window-placement semantics of
 * the three designs, and run-to-run determinism of sampled results.
 */

#include <gtest/gtest.h>

#include "core/varsim.hh"
#include "sample/runner.hh"

namespace
{

using namespace varsim;

core::SystemConfig
goldenSys()
{
    core::SystemConfig sys = core::SystemConfig::testDefault();
    sys.mem.perturbMaxNs = 4; // exercise the perturbation path
    return sys;
}

workload::WorkloadParams
goldenWl(workload::WorkloadKind kind)
{
    workload::WorkloadParams wl;
    wl.kind = kind;
    wl.threadsPerCpu = 2; // oversubscribed: scheduler in play
    return wl;
}

/** FNV-1a over the 8 little-endian bytes of @p v. */
std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

// ---------------------------------------------------------------
// SampleConfig::parse
// ---------------------------------------------------------------

TEST(SampleConfigParse, AcceptsTheThreeDesigns)
{
    core::SampleConfig c;
    ASSERT_TRUE(core::SampleConfig::parse("systematic:200:20:40", c));
    EXPECT_EQ(c.design, core::SampleConfig::Design::Systematic);
    EXPECT_EQ(c.periodTxns, 200u);
    EXPECT_EQ(c.warmupTxns, 20u);
    EXPECT_EQ(c.measureTxns, 40u);
    EXPECT_DOUBLE_EQ(c.confidence, 0.95);
    EXPECT_TRUE(c.enabled());
    EXPECT_EQ(c.toString(), "systematic:200:20:40");

    ASSERT_TRUE(core::SampleConfig::parse("stratified:100:0:25", c));
    EXPECT_EQ(c.design, core::SampleConfig::Design::Stratified);
    EXPECT_EQ(c.warmupTxns, 0u);

    ASSERT_TRUE(core::SampleConfig::parse("matched:50:5:10:0.99", c));
    EXPECT_EQ(c.design, core::SampleConfig::Design::MatchedPair);
    EXPECT_DOUBLE_EQ(c.confidence, 0.99);
}

TEST(SampleConfigParse, RejectsMalformedSpecsUntouched)
{
    const char *bad[] = {
        "",                        // empty
        "systematic",              // missing counts
        "systematic:200:20",       // missing M
        "smarts:200:20:40",        // unknown design
        "systematic:0:0:40",       // zero period
        "systematic:200:20:0",     // zero window
        "systematic:100:80:40",    // W+M > U
        "systematic:200:x:40",     // non-numeric
        "systematic:200:20:40:1.5",// confidence out of (0,1)
        "systematic:200:20:40:0",  // confidence out of (0,1)
        "systematic:200:20:40:0.9:7", // trailing field
    };
    for (const char *text : bad) {
        core::SampleConfig c;
        c.offsetSeed = 777; // sentinel: parse failure leaves it
        EXPECT_FALSE(core::SampleConfig::parse(text, c)) << text;
        EXPECT_FALSE(c.enabled()) << text;
        EXPECT_EQ(c.offsetSeed, 777u) << text;
    }
}

// ---------------------------------------------------------------
// Drop-in guarantee: sampling compiled in but disabled is bitwise
// the seed simulator. Same pins as test_determinism_golden row 0,
// including the OS scheduling-trace hash.
// ---------------------------------------------------------------

TEST(SampledDisabledGolden, MatchesLegacyPinsIncludingTrace)
{
    const auto sys = goldenSys();
    core::Simulation simn(sys, goldenWl(workload::WorkloadKind::Oltp));
    simn.seedPerturbation(11);
    simn.kernel().enableTrace(1u << 20);

    core::RunConfig rc;
    rc.warmupTxns = 10;
    rc.measureTxns = 40;
    rc.perturbSeed = 11;
    ASSERT_FALSE(rc.sample.enabled()); // default design: Off

    const core::RunResult r =
        sample::measure(simn, rc, sys.numCpus());

    EXPECT_EQ(r.runtimeTicks, 186781u);
    EXPECT_EQ(r.txns, 40u);
    EXPECT_EQ(r.mem.l2Misses, 3948u);
    EXPECT_EQ(r.os.dispatches, 43u);
    EXPECT_EQ(r.cpu.instructions, 125432u);
    EXPECT_FALSE(r.sampled.enabled);

    std::uint64_t h = 1469598103934665603ull;
    for (const auto &e : simn.kernel().traceEvents()) {
        h = fnv1a(h, e.when);
        h = fnv1a(h, static_cast<std::uint64_t>(e.cpu));
        h = fnv1a(h, static_cast<std::uint64_t>(e.thread));
        h = fnv1a(h, static_cast<std::uint64_t>(e.kind));
    }
    EXPECT_EQ(h, 4213816009097953443ull);
}

// ---------------------------------------------------------------
// Sampled runs: structure, export, and determinism
// ---------------------------------------------------------------

core::RunConfig
sampledRun(const char *spec, std::uint64_t txns,
           std::uint64_t seed = 11)
{
    core::RunConfig rc;
    rc.warmupTxns = 10;
    rc.measureTxns = txns;
    rc.perturbSeed = seed;
    EXPECT_TRUE(core::SampleConfig::parse(spec, rc.sample));
    return rc;
}

TEST(SampledRun, IntervalAccountingAndRegistryExport)
{
    const auto sys = goldenSys();
    const auto wl = goldenWl(workload::WorkloadKind::Oltp);
    const auto rc = sampledRun("systematic:100:15:25", 400);
    const core::RunResult r = sample::runOnce(sys, wl, rc);

    EXPECT_TRUE(r.sampled.enabled);
    EXPECT_EQ(r.sampled.periods, 4u);
    EXPECT_EQ(r.sampled.windows, 4u);
    EXPECT_EQ(r.sampled.measuredTxns, 100u);
    EXPECT_EQ(r.sampled.warmTxns, 60u);
    EXPECT_EQ(r.sampled.fastTxns, 240u);
    EXPECT_FALSE(r.sampled.fullDetailFallback);
    EXPECT_EQ(r.txns, 400u);

    // Confidence-bounded estimates, and the headline metric is the
    // sampled point estimate.
    EXPECT_LE(r.sampled.cptLo, r.sampled.cptMean);
    EXPECT_LE(r.sampled.cptMean, r.sampled.cptHi);
    EXPECT_LT(r.sampled.cptLo, r.sampled.cptHi);
    EXPECT_LE(r.sampled.ipcLo, r.sampled.ipcMean);
    EXPECT_LE(r.sampled.ipcMean, r.sampled.ipcHi);
    EXPECT_GT(r.sampled.ipcMean, 0.0);
    EXPECT_GT(r.sampled.l2MissMean, 0.0);
    EXPECT_LT(r.sampled.l2MissMean, 1.0);
    EXPECT_DOUBLE_EQ(r.cyclesPerTxn, r.sampled.cptMean);

    // The estimates flow out through the metrics registry (and so
    // into campaign stores) under sim.sampled.*.
    auto stat = [&](const char *name) -> double {
        for (const auto &s : r.stats)
            if (s.name == name)
                return s.value;
        ADD_FAILURE() << "stat not dumped: " << name;
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(stat("sim.sampled.enabled"), 1.0);
    EXPECT_DOUBLE_EQ(stat("sim.sampled.windows"), 4.0);
    EXPECT_DOUBLE_EQ(stat("sim.sampled.cpt_lo"), r.sampled.cptLo);
    EXPECT_DOUBLE_EQ(stat("sim.sampled.ipc_mean"),
                     r.sampled.ipcMean);
}

TEST(SampledRun, DeterministicAcrossRepeats)
{
    const auto sys = goldenSys();
    const auto wl = goldenWl(workload::WorkloadKind::Oltp);
    const auto rc = sampledRun("stratified:100:15:25", 300);

    const core::RunResult a = sample::runOnce(sys, wl, rc);
    const core::RunResult b = sample::runOnce(sys, wl, rc);

    EXPECT_EQ(a.runtimeTicks, b.runtimeTicks);
    EXPECT_EQ(a.txns, b.txns);
    EXPECT_EQ(a.sampled.windows, b.sampled.windows);
    EXPECT_EQ(a.sampled.fastTxns, b.sampled.fastTxns);
    // Bitwise: the estimates are pure functions of (config, seed).
    EXPECT_EQ(a.sampled.cptMean, b.sampled.cptMean);
    EXPECT_EQ(a.sampled.ipcHi, b.sampled.ipcHi);
    EXPECT_EQ(a.statsJsonl(), b.statsJsonl());
}

// A run shorter than one W+M window degrades to full detail: an
// exact answer with a degenerate interval, never an empty estimate.
TEST(SampledRun, ShorterThanOneWindowFallsBackToFullDetail)
{
    const auto sys = goldenSys();
    const auto wl = goldenWl(workload::WorkloadKind::Oltp);
    const auto rc = sampledRun("systematic:100:10:20", 15);
    const core::RunResult r = sample::runOnce(sys, wl, rc);

    EXPECT_TRUE(r.sampled.fullDetailFallback);
    EXPECT_EQ(r.sampled.windows, 1u);
    EXPECT_EQ(r.sampled.periods, 0u);
    EXPECT_EQ(r.sampled.fastTxns, 0u);
    EXPECT_EQ(r.sampled.measuredTxns, 15u);
    EXPECT_EQ(r.txns, 15u);
    // Degenerate interval: the estimate is the exact value.
    EXPECT_EQ(r.sampled.cptLo, r.sampled.cptMean);
    EXPECT_EQ(r.sampled.cptHi, r.sampled.cptMean);
    EXPECT_GT(r.sampled.cptMean, 0.0);
}

// A remainder too short for another window fast-forwards when at
// least one window was already measured (no fallback, no truncation
// of the transaction budget).
TEST(SampledRun, ShortRemainderFastForwardsAfterFirstWindow)
{
    const auto sys = goldenSys();
    const auto wl = goldenWl(workload::WorkloadKind::Oltp);
    const auto rc = sampledRun("systematic:100:20:30", 130);
    const core::RunResult r = sample::runOnce(sys, wl, rc);

    EXPECT_FALSE(r.sampled.fullDetailFallback);
    EXPECT_EQ(r.sampled.periods, 1u);
    EXPECT_EQ(r.sampled.windows, 1u);
    EXPECT_EQ(r.sampled.warmTxns, 20u);
    EXPECT_EQ(r.sampled.measuredTxns, 30u);
    EXPECT_EQ(r.sampled.fastTxns, 80u); // 50 in-period + 30 tail
    EXPECT_EQ(r.txns, 130u);
}

// The scientific benchmarks complete in a single transaction, far
// short of any window: the controller must degrade to full detail
// and report the exact full-detail answer.
TEST(SampledRun, ScientificWorkloadYieldsExactFallback)
{
    const auto sys = goldenSys();
    const auto wl = goldenWl(workload::WorkloadKind::Barnes);

    core::RunConfig rc;
    rc.warmupTxns = 0;
    rc.measureTxns = 0; // use the workload's default (1 for Barnes)
    rc.perturbSeed = 11;
    EXPECT_TRUE(
        core::SampleConfig::parse("systematic:100:10:20", rc.sample));
    const core::RunResult r = sample::runOnce(sys, wl, rc);

    // The 1-txn budget is met at the TxnEnd itself (before the
    // trailing End op), so this is the short-run fallback, not the
    // workload-ended one.
    EXPECT_TRUE(r.sampled.fullDetailFallback);
    EXPECT_EQ(r.sampled.windows, 1u);

    // Same configuration without sampling: the trajectories must be
    // identical (the fallback ran every transaction detailed).
    core::RunConfig full = rc;
    full.sample = core::SampleConfig{};
    const core::RunResult ref = core::runOnce(sys, wl, full);
    EXPECT_EQ(r.runtimeTicks, ref.runtimeTicks);
    EXPECT_EQ(r.txns, ref.txns);
    EXPECT_EQ(r.cpu.instructions, ref.cpu.instructions);
    EXPECT_NEAR(r.sampled.cptMean, ref.cyclesPerTxn,
                1e-9 * ref.cyclesPerTxn);
}

// A workload can end during a fast-forward interval before any
// window was measured; whatever ran is the whole population and is
// reported as a degenerate, flagged estimate.
TEST(SampledRun, WorkloadOutrunsBudgetDuringFastForward)
{
    const auto sys = goldenSys();
    const auto wl = goldenWl(workload::WorkloadKind::Barnes);

    core::RunConfig rc;
    rc.warmupTxns = 0;
    rc.measureTxns = 50; // budget >> the 1 txn Barnes delivers
    rc.perturbSeed = 11;
    EXPECT_TRUE(
        core::SampleConfig::parse("systematic:100:10:20", rc.sample));
    const core::RunResult r = sample::runOnce(sys, wl, rc);

    EXPECT_TRUE(r.workloadEnded);
    EXPECT_TRUE(r.sampled.fullDetailFallback);
    EXPECT_EQ(r.sampled.windows, 1u);
    EXPECT_GT(r.sampled.cptMean, 0.0);
}

// ---------------------------------------------------------------
// Window placement: the design contract
// ---------------------------------------------------------------

/** Transaction positions of the window-end boundaries of one run. */
std::vector<std::uint64_t>
windowPositions(core::SampleConfig::Design design,
                std::uint64_t perturb_seed)
{
    const auto sys = goldenSys();
    core::Simulation simn(sys,
                          goldenWl(workload::WorkloadKind::Oltp));
    simn.seedPerturbation(perturb_seed);
    simn.runTransactions(10);

    core::SampleConfig cfg;
    cfg.design = design;
    cfg.periodTxns = 100;
    cfg.warmupTxns = 10;
    cfg.measureTxns = 20;

    sample::SamplingController ctl(simn, cfg, perturb_seed);
    std::vector<std::uint64_t> pos;
    ctl.setCheckpointSink(
        [&](std::uint64_t, const core::Checkpoint &) {
            pos.push_back(simn.totalTxns());
        });
    ctl.run(400);
    return pos;
}

TEST(WindowPlacement, MatchedPairAlignsAcrossSeeds)
{
    using Design = core::SampleConfig::Design;
    const auto a = windowPositions(Design::MatchedPair, 11);
    const auto b = windowPositions(Design::MatchedPair, 12);
    ASSERT_EQ(a.size(), 4u);
    // Identical placement for every perturbation seed: the pairwise
    // comparison measures the same windows, placement noise cancels.
    EXPECT_EQ(a, b);
}

TEST(WindowPlacement, StratifiedRandomizesAcrossSeeds)
{
    using Design = core::SampleConfig::Design;
    const auto a = windowPositions(Design::Stratified, 11);
    const auto b = windowPositions(Design::Stratified, 12);
    ASSERT_EQ(a.size(), 4u);
    ASSERT_EQ(b.size(), 4u);
    // Independent placement per run (deterministic per seed).
    EXPECT_NE(a, b);
    EXPECT_EQ(a, windowPositions(Design::Stratified, 11));
}

TEST(WindowPlacement, SystematicPinsWindowsToPeriodEnds)
{
    using Design = core::SampleConfig::Design;
    const auto a = windowPositions(Design::Systematic, 11);
    // Window at the end of each 100-txn unit, after the 10-txn
    // pre-measurement warm-up prefix.
    const std::vector<std::uint64_t> expect = {110, 210, 310, 410};
    EXPECT_EQ(a, expect);
}

} // anonymous namespace
