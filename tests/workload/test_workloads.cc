/**
 * @file
 * Property tests over all seven workload models: stream determinism
 * (the cornerstone of the paper's methodology — op streams must be
 * pure functions of the workload seed), structural well-formedness
 * (balanced lock/unlock nesting, transaction boundaries, valid
 * addresses), serialization, and the per-kind signatures (barrier
 * phasing for the scientific codes, GC sawtooth for SPECjbb, ...).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cpu/simple_cpu.hh"
#include "mem/mem_system.hh"
#include "workload/builders.hh"
#include "workload/workload.hh"

namespace varsim
{
namespace workload
{
namespace
{

using cpu::Op;
using cpu::OpKind;

/** A complete small system to host a workload build. */
struct Host
{
    explicit Host(WorkloadKind kind, std::uint64_t seed = 12345,
                  std::size_t num_cpus = 4)
    {
        mem::MemConfig mcfg;
        mcfg.numNodes = num_cpus;
        mcfg.l1Size = 8 * 1024;
        mcfg.l2Size = 64 * 1024;
        ms = std::make_unique<mem::MemSystem>("mem", eq, mcfg);
        std::vector<cpu::BaseCpu *> ptrs;
        for (std::size_t i = 0; i < num_cpus; ++i) {
            cpus.push_back(std::make_unique<cpu::SimpleCpu>(
                sim::format("cpu%zu", i), eq, ccfg, ms->icache(i),
                ms->dcache(i), static_cast<sim::CpuId>(i)));
            ptrs.push_back(cpus.back().get());
        }
        kernel =
            std::make_unique<os::Kernel>("kernel", eq, oscfg, ptrs);
        WorkloadParams params;
        params.kind = kind;
        params.seed = seed;
        wl = Workload::build(params, *kernel, num_cpus, 64);
    }

    sim::EventQueue eq;
    cpu::CpuConfig ccfg;
    os::OsConfig oscfg;
    std::unique_ptr<mem::MemSystem> ms;
    std::vector<std::unique_ptr<cpu::BaseCpu>> cpus;
    std::unique_ptr<os::Kernel> kernel;
    std::unique_ptr<Workload> wl;
};

/** Pull up to @p n ops from a thread's stream (stops at End). */
std::vector<Op>
pullOps(os::Kernel &k, sim::ThreadId tid, std::size_t n)
{
    std::vector<Op> out;
    cpu::OpStream &s = k.thread(tid).stream();
    for (std::size_t i = 0; i < n; ++i) {
        const Op op = s.current();
        out.push_back(op);
        if (op.kind == OpKind::End)
            break;
        s.advance();
    }
    return out;
}

const WorkloadKind allKinds[] = {
    WorkloadKind::Oltp,      WorkloadKind::Apache,
    WorkloadKind::SpecJbb,   WorkloadKind::Slashcode,
    WorkloadKind::EcPerf,    WorkloadKind::Barnes,
    WorkloadKind::Ocean,
};

class AllWorkloads
    : public ::testing::TestWithParam<WorkloadKind>
{};

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllWorkloads, ::testing::ValuesIn(allKinds),
    [](const ::testing::TestParamInfo<WorkloadKind> &info) {
        return kindName(info.param);
    });

TEST_P(AllWorkloads, StreamsAreDeterministicPerSeed)
{
    Host a(GetParam(), 42);
    Host b(GetParam(), 42);
    ASSERT_EQ(a.wl->numThreads(), b.wl->numThreads());
    for (sim::ThreadId tid = 0;
         tid < static_cast<sim::ThreadId>(a.wl->numThreads());
         ++tid) {
        const auto oa = pullOps(*a.kernel, tid, 2000);
        const auto ob = pullOps(*b.kernel, tid, 2000);
        ASSERT_EQ(oa.size(), ob.size());
        for (std::size_t i = 0; i < oa.size(); ++i) {
            EXPECT_EQ(oa[i].kind, ob[i].kind);
            EXPECT_EQ(oa[i].addr, ob[i].addr);
            EXPECT_EQ(oa[i].count, ob[i].count);
            EXPECT_EQ(oa[i].id, ob[i].id);
        }
    }
}

TEST_P(AllWorkloads, DifferentSeedsGiveDifferentStreams)
{
    if (GetParam() == WorkloadKind::Ocean) {
        // Ocean is fully deterministic (stencil), seed-independent
        // by design.
        GTEST_SKIP();
    }
    Host a(GetParam(), 1);
    Host b(GetParam(), 2);
    const auto oa = pullOps(*a.kernel, 0, 2000);
    const auto ob = pullOps(*b.kernel, 0, 2000);
    bool differ = oa.size() != ob.size();
    for (std::size_t i = 0; !differ && i < oa.size(); ++i) {
        differ = oa[i].kind != ob[i].kind ||
                 oa[i].addr != ob[i].addr ||
                 oa[i].count != ob[i].count;
    }
    EXPECT_TRUE(differ);
}

TEST_P(AllWorkloads, LockNestingIsBalanced)
{
    Host h(GetParam());
    const auto ops = pullOps(*h.kernel, 0, 20000);
    std::map<int, int> depth;
    for (const Op &op : ops) {
        if (op.kind == OpKind::Lock) {
            ++depth[op.id];
            EXPECT_EQ(depth[op.id], 1)
                << "recursive lock of mutex " << op.id;
        } else if (op.kind == OpKind::Unlock) {
            --depth[op.id];
            EXPECT_GE(depth[op.id], 0)
                << "unlock without lock of mutex " << op.id;
        } else if (op.kind == OpKind::TxnEnd) {
            for (const auto &[id, d] : depth)
                EXPECT_EQ(d, 0) << "mutex " << id
                                << " held across a txn boundary";
        }
    }
}

TEST_P(AllWorkloads, MemoryOpsHaveValidAddresses)
{
    Host h(GetParam());
    const auto ops = pullOps(*h.kernel, 1, 10000);
    for (const Op &op : ops) {
        if (op.kind == OpKind::Load || op.kind == OpKind::Store ||
            op.kind == OpKind::Lock || op.kind == OpKind::Unlock) {
            EXPECT_GE(op.addr, 0x1000'0000u)
                << "address below the workload address space";
        }
    }
}

TEST_P(AllWorkloads, EmitsTransactions)
{
    Host h(GetParam());
    // The scientific codes emit a single TxnEnd at the very end of
    // their (finite) stream; pull enough to reach it.
    const bool scientific = GetParam() == WorkloadKind::Barnes ||
                            GetParam() == WorkloadKind::Ocean;
    const auto ops =
        pullOps(*h.kernel, 0, scientific ? 5'000'000 : 50000);
    int txns = 0;
    for (const Op &op : ops)
        txns += op.kind == OpKind::TxnEnd;
    EXPECT_GE(txns, 1);
}

TEST_P(AllWorkloads, ComputeOpsAreReasonablySized)
{
    Host h(GetParam());
    const auto ops = pullOps(*h.kernel, 0, 10000);
    for (const Op &op : ops) {
        if (op.kind == OpKind::Compute) {
            EXPECT_GT(op.count, 0u);
            EXPECT_LT(op.count, 100'000u)
                << "compute segment too large for preemption "
                   "granularity";
        }
    }
}

TEST_P(AllWorkloads, ProgramSerializationRoundTrips)
{
    Host a(GetParam(), 7);
    // Advance thread 0 into the middle of a transaction.
    pullOps(*a.kernel, 0, 137);

    sim::CheckpointOut out;
    a.wl->serialize(out);

    Host b(GetParam(), 7);
    sim::CheckpointIn in(out.bytes());
    b.wl->unserialize(in);

    const auto oa = pullOps(*a.kernel, 0, 1000);
    const auto ob = pullOps(*b.kernel, 0, 1000);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
        EXPECT_EQ(oa[i].kind, ob[i].kind);
        EXPECT_EQ(oa[i].addr, ob[i].addr);
        EXPECT_EQ(oa[i].count, ob[i].count);
    }
}

TEST(WorkloadNames, RoundTrip)
{
    for (WorkloadKind kind : allKinds)
        EXPECT_EQ(kindFromName(kindName(kind)), kind);
    EXPECT_EQ(kindFromName("oltp"), WorkloadKind::Oltp);
    EXPECT_EQ(kindFromName("SPECJBB"), WorkloadKind::SpecJbb);
}

TEST(OltpWorkload, UsesEightUsersPerCpuByDefault)
{
    Host h(WorkloadKind::Oltp, 1, 4);
    EXPECT_EQ(h.wl->numThreads(), 32u);
}

TEST(OltpWorkload, HasFiveTransactionTypes)
{
    Host h(WorkloadKind::Oltp);
    std::set<int> types;
    for (sim::ThreadId tid = 0; tid < 8; ++tid) {
        for (const Op &op : pullOps(*h.kernel, tid, 40000)) {
            if (op.kind == OpKind::TxnEnd)
                types.insert(op.id);
        }
    }
    EXPECT_EQ(types.size(), 5u);
}

TEST(OltpWorkload, UsesLocksAndLog)
{
    Host h(WorkloadKind::Oltp);
    int locks = 0;
    for (const Op &op : pullOps(*h.kernel, 0, 20000))
        locks += op.kind == OpKind::Lock;
    EXPECT_GT(locks, 5);
}

TEST(ScientificWorkloads, OneThreadPerCpu)
{
    Host b(WorkloadKind::Barnes, 1, 4);
    EXPECT_EQ(b.wl->numThreads(), 4u);
    Host o(WorkloadKind::Ocean, 1, 4);
    EXPECT_EQ(o.wl->numThreads(), 4u);
}

TEST(ScientificWorkloads, BarrierCountsMatchAcrossThreads)
{
    for (WorkloadKind kind :
         {WorkloadKind::Barnes, WorkloadKind::Ocean}) {
        Host h(kind, 1, 4);
        std::vector<int> counts;
        for (sim::ThreadId tid = 0; tid < 4; ++tid) {
            int barriers = 0;
            // Pull until End (streams are finite).
            const auto ops = pullOps(*h.kernel, tid, 5'000'000);
            ASSERT_EQ(ops.back().kind, OpKind::End)
                << kindName(kind) << " thread " << tid
                << " did not finish";
            for (const Op &op : ops)
                barriers += op.kind == OpKind::Barrier;
            counts.push_back(barriers);
        }
        for (int c : counts)
            EXPECT_EQ(c, counts[0])
                << kindName(kind)
                << ": mismatched barrier counts deadlock";
    }
}

TEST(ScientificWorkloads, ExactlyOneTransactionTotal)
{
    Host h(WorkloadKind::Barnes, 1, 4);
    int txns = 0;
    for (sim::ThreadId tid = 0; tid < 4; ++tid) {
        for (const Op &op : pullOps(*h.kernel, tid, 5'000'000))
            txns += op.kind == OpKind::TxnEnd;
    }
    EXPECT_EQ(txns, 1) << "the whole benchmark is one transaction";
}

TEST(SpecJbbWorkload, GcTransactionsAreHeavy)
{
    Host h(WorkloadKind::SpecJbb);
    // Type-1 transactions are GC pauses; they must be much larger
    // than regular transactions.
    std::uint64_t regularMem = 0, gcMem = 0;
    std::uint64_t regularCount = 0, gcCount = 0;
    std::uint64_t txnMem = 0;
    cpu::OpStream &s = h.kernel->thread(0).stream();
    for (int i = 0; i < 2'000'000; ++i) {
        const Op op = s.current();
        if (op.kind == OpKind::End)
            break;
        if (op.kind == OpKind::Load || op.kind == OpKind::Store) {
            ++txnMem;
        } else if (op.kind == OpKind::TxnEnd) {
            if (op.id == 1) {
                gcMem += txnMem;
                ++gcCount;
            } else {
                regularMem += txnMem;
                ++regularCount;
            }
            txnMem = 0;
            if (gcCount >= 3)
                break;
        }
        s.advance();
    }
    ASSERT_GT(gcCount, 0u);
    ASSERT_GT(regularCount, 0u);
    EXPECT_GT(gcMem / gcCount, 10 * (regularMem / regularCount));
}

TEST(SlashcodeWorkload, TransactionSizesVaryWidely)
{
    Host h(WorkloadKind::Slashcode);
    std::vector<std::uint64_t> sizes;
    std::uint64_t cur = 0;
    cpu::OpStream &s = h.kernel->thread(0).stream();
    while (sizes.size() < 12) {
        const Op op = s.current();
        cur += op.kind == OpKind::Compute ? op.count : 1;
        if (op.kind == OpKind::TxnEnd) {
            sizes.push_back(cur);
            cur = 0;
        }
        s.advance();
    }
    const auto [mn, mx] =
        std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_GT(*mx, 2 * *mn)
        << "page-render cost should vary widely";
}

TEST(WorkloadDefaults, TxnCountsFollowTable3Scaling)
{
    EXPECT_EQ(Host(WorkloadKind::Barnes).wl->defaultTxnCount(), 1u);
    EXPECT_EQ(Host(WorkloadKind::Ocean).wl->defaultTxnCount(), 1u);
    EXPECT_EQ(Host(WorkloadKind::EcPerf).wl->defaultTxnCount(), 5u);
    EXPECT_EQ(Host(WorkloadKind::Slashcode).wl->defaultTxnCount(),
              30u);
    EXPECT_GT(Host(WorkloadKind::Oltp).wl->defaultTxnCount(), 100u);
    EXPECT_GT(Host(WorkloadKind::SpecJbb).wl->defaultTxnCount(),
              1000u);
}

} // namespace
} // namespace workload
} // namespace varsim
