/**
 * @file
 * Phase-structure property tests: the mechanisms that give the
 * synthetic workloads their *time* variability (Figures 8 and 9)
 * must actually be present in the generated op streams —
 * transaction-mix drift and buffer-pool drift for OLTP, the GC
 * sawtooth for SPECjbb — and must be functions of workload age, not
 * of timing.
 */

#include <gtest/gtest.h>

#include <map>

#include "cpu/simple_cpu.hh"
#include "mem/mem_system.hh"
#include "stats/summary.hh"
#include "workload/workload.hh"

namespace varsim
{
namespace workload
{
namespace
{

using cpu::Op;
using cpu::OpKind;

struct Host
{
    explicit Host(WorkloadKind kind)
    {
        mem::MemConfig mcfg;
        mcfg.numNodes = 2;
        mcfg.l1Size = 8 * 1024;
        mcfg.l2Size = 64 * 1024;
        ms = std::make_unique<mem::MemSystem>("mem", eq, mcfg);
        std::vector<cpu::BaseCpu *> ptrs;
        for (std::size_t i = 0; i < 2; ++i) {
            cpus.push_back(std::make_unique<cpu::SimpleCpu>(
                sim::format("cpu%zu", i), eq, ccfg, ms->icache(i),
                ms->dcache(i), static_cast<sim::CpuId>(i)));
            ptrs.push_back(cpus.back().get());
        }
        kernel =
            std::make_unique<os::Kernel>("kernel", eq, oscfg, ptrs);
        WorkloadParams params;
        params.kind = kind;
        wl = Workload::build(params, *kernel, 2, 64);
    }

    sim::EventQueue eq;
    cpu::CpuConfig ccfg;
    os::OsConfig oscfg;
    std::unique_ptr<mem::MemSystem> ms;
    std::vector<std::unique_ptr<cpu::BaseCpu>> cpus;
    std::unique_ptr<os::Kernel> kernel;
    std::unique_ptr<Workload> wl;
};

/** Collect per-transaction summaries of thread 0's stream. */
struct TxnProfile
{
    int type = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memOps = 0;
};

std::vector<TxnProfile>
profile(os::Kernel &k, std::size_t txns)
{
    std::vector<TxnProfile> out;
    cpu::OpStream &s = k.thread(0).stream();
    TxnProfile cur;
    while (out.size() < txns) {
        const Op op = s.current();
        switch (op.kind) {
          case OpKind::Compute:
            cur.instructions += op.count;
            break;
          case OpKind::Load:
          case OpKind::Store:
            ++cur.memOps;
            ++cur.instructions;
            break;
          case OpKind::TxnEnd:
            cur.type = op.id;
            out.push_back(cur);
            cur = TxnProfile{};
            break;
          case OpKind::End:
            return out;
          default:
            ++cur.instructions;
            break;
        }
        s.advance();
    }
    return out;
}

TEST(OltpPhases, TransactionMixDriftsWithAge)
{
    Host h(WorkloadKind::Oltp);
    const auto txns = profile(*h.kernel, 4000);
    ASSERT_GE(txns.size(), 4000u);

    // Fraction of analytics (type 4, StockLevel) transactions early
    // vs late within the mix period: the drift raises it.
    auto share = [&](std::size_t from, std::size_t to) {
        int n = 0;
        for (std::size_t i = from; i < to; ++i)
            n += txns[i].type == 4;
        return static_cast<double>(n) / static_cast<double>(to -
                                                            from);
    };
    const double early = share(0, 1000);
    const double late = share(2800, 3800);
    EXPECT_GT(late, early + 0.02)
        << "StockLevel share must grow across the mix period";
}

TEST(OltpPhases, MixDriftWrapsAtPeriod)
{
    // The drift is periodic (4000 txns): behaviour at txn ~4100
    // resembles txn ~100 again, not txn ~3900.
    Host h(WorkloadKind::Oltp);
    const auto txns = profile(*h.kernel, 8200);
    ASSERT_GE(txns.size(), 8200u);
    auto share = [&](std::size_t from, std::size_t to) {
        int n = 0;
        for (std::size_t i = from; i < to; ++i)
            n += txns[i].type >= 2; // read-mostly types
        return static_cast<double>(n) / static_cast<double>(to -
                                                            from);
    };
    const double startOfPeriod1 = share(0, 800);
    const double endOfPeriod1 = share(3200, 4000);
    const double startOfPeriod2 = share(4000, 4800);
    EXPECT_GT(endOfPeriod1, startOfPeriod1);
    EXPECT_LT(startOfPeriod2, endOfPeriod1);
}

TEST(SpecJbbPhases, GcSawtoothIsPeriodic)
{
    Host h(WorkloadKind::SpecJbb);
    const auto txns = profile(*h.kernel, 1300);
    ASSERT_GE(txns.size(), 1300u);
    std::vector<std::size_t> gcAt;
    for (std::size_t i = 0; i < txns.size(); ++i)
        if (txns[i].type == 1)
            gcAt.push_back(i);
    ASSERT_GE(gcAt.size(), 3u) << "expected periodic GC pauses";
    for (std::size_t i = 1; i < gcAt.size(); ++i)
        EXPECT_EQ(gcAt[i] - gcAt[i - 1], 400u)
            << "GC period must be deterministic in txn index";
}

TEST(SpecJbbPhases, GcCostGrowsWithHeapAge)
{
    // Long-term heap growth: later collections scan more.
    Host h(WorkloadKind::SpecJbb);
    const auto txns = profile(*h.kernel, 3700);
    std::vector<std::uint64_t> gcMem;
    for (const auto &t : txns)
        if (t.type == 1)
            gcMem.push_back(t.memOps);
    ASSERT_GE(gcMem.size(), 3u);
    EXPECT_GT(gcMem.back(), gcMem.front())
        << "later GCs must be heavier (Figure 9b's driver)";
}

TEST(OltpPhases, TransactionTypesHaveDistinctSizes)
{
    Host h(WorkloadKind::Oltp);
    const auto txns = profile(*h.kernel, 3000);
    std::map<int, stats::RunningStat> byType;
    for (const auto &t : txns)
        byType[t.type].add(static_cast<double>(t.instructions));
    ASSERT_EQ(byType.size(), 5u);
    // StockLevel (4) is the analytics heavyweight; Payment (1) is
    // the lightweight.
    EXPECT_GT(byType[4].mean(), 1.5 * byType[1].mean());
}

} // namespace
} // namespace workload
} // namespace varsim
