/**
 * @file
 * Tests of the simulated OS: dispatch, quantum preemption, mutex
 * mutual exclusion with FIFO handoff, barriers, sleeps, yields, work
 * stealing, the scheduling-event trace (Figure 1's raw data), and
 * the drain protocol.
 */

#include <gtest/gtest.h>

#include "cpu/simple_cpu.hh"
#include "mem/mem_system.hh"
#include "os/kernel.hh"

namespace varsim
{
namespace os
{
namespace
{

using cpu::Op;
using cpu::OpKind;

class ScriptStream : public cpu::OpStream
{
  public:
    explicit ScriptStream(std::vector<Op> ops) : ops_(std::move(ops))
    {}

    const Op &current() override { return ops_.at(pos); }
    void advance() override { ++pos; }

    void
    serialize(sim::CheckpointOut &cp) const override
    {
        cp.put<std::uint64_t>(pos);
    }

    void
    unserialize(sim::CheckpointIn &cp) override
    {
        std::uint64_t p = 0;
        cp.get(p);
        pos = static_cast<std::size_t>(p);
    }

  private:
    std::vector<Op> ops_;
    std::size_t pos = 0;
};

/** Records transaction completions. */
struct RecordingSink : TxnSink
{
    void
    transactionCompleted(sim::ThreadId tid, int type,
                         sim::Tick when) override
    {
        completions.push_back({tid, type, when});
    }

    struct Rec
    {
        sim::ThreadId tid;
        int type;
        sim::Tick when;
    };
    std::vector<Rec> completions;
};

class KernelTest : public ::testing::Test
{
  protected:
    void
    build(std::size_t num_cpus, OsConfig oscfg = {})
    {
        mem::MemConfig mcfg;
        mcfg.numNodes = num_cpus;
        mcfg.l1Size = 8 * 1024;
        mcfg.l2Size = 64 * 1024;
        mcfg.perturbMaxNs = 0;
        ms = std::make_unique<mem::MemSystem>("mem", eq, mcfg);
        std::vector<cpu::BaseCpu *> ptrs;
        for (std::size_t i = 0; i < num_cpus; ++i) {
            cpus.push_back(std::make_unique<cpu::SimpleCpu>(
                sim::format("cpu%zu", i), eq, ccfg, ms->icache(i),
                ms->dcache(i), static_cast<sim::CpuId>(i)));
            ptrs.push_back(cpus.back().get());
        }
        kernel = std::make_unique<Kernel>("kernel", eq, oscfg, ptrs);
        kernel->setTxnSink(&sink);
    }

    Thread &
    addThread(std::vector<Op> ops)
    {
        streams.push_back(
            std::make_unique<ScriptStream>(std::move(ops)));
        auto t = std::make_unique<Thread>(
            static_cast<sim::ThreadId>(kernel->numThreads()),
            streams.back().get());
        t->fetch.codeBase = 0x100000;
        t->fetch.codeBlocks = 32;
        return kernel->addThread(std::move(t));
    }

    sim::EventQueue eq;
    cpu::CpuConfig ccfg;
    std::unique_ptr<mem::MemSystem> ms;
    std::vector<std::unique_ptr<cpu::BaseCpu>> cpus;
    std::vector<std::unique_ptr<ScriptStream>> streams;
    std::unique_ptr<Kernel> kernel;
    RecordingSink sink;
};

TEST_F(KernelTest, ThreadsRunToCompletion)
{
    build(2);
    for (int i = 0; i < 4; ++i) {
        addThread({{OpKind::Compute, 100, 0, 0},
                   {OpKind::TxnEnd, 0, 0, 0},
                   {OpKind::End, 0, 0, 0}});
    }
    kernel->start();
    eq.run();
    EXPECT_EQ(kernel->finishedThreads(), 4u);
    EXPECT_EQ(sink.completions.size(), 4u);
    EXPECT_EQ(kernel->stats().transactions, 4u);
    EXPECT_TRUE(eq.empty());
}

TEST_F(KernelTest, QuantumPreemptsLongRunners)
{
    OsConfig oscfg;
    oscfg.quantum = 5'000;
    build(1, oscfg);
    // Two CPU-bound threads on one CPU must interleave.
    for (int i = 0; i < 2; ++i) {
        std::vector<Op> ops;
        for (int j = 0; j < 20; ++j) {
            ops.push_back({OpKind::Compute, 2000, 0, 0});
            ops.push_back({OpKind::TxnEnd, 0, 0, i});
        }
        ops.push_back({OpKind::End, 0, 0, 0});
        addThread(ops);
    }
    kernel->start();
    eq.run();
    EXPECT_GT(kernel->stats().preemptions, 0u);
    EXPECT_EQ(kernel->finishedThreads(), 2u);
    // Completions of the two threads must interleave, not be fully
    // serialized.
    bool interleaved = false;
    for (std::size_t i = 1; i < sink.completions.size(); ++i) {
        if (sink.completions[i].type !=
            sink.completions[i - 1].type) {
            interleaved = true;
        }
    }
    EXPECT_TRUE(interleaved);
}

TEST_F(KernelTest, MutexSerializesCriticalSections)
{
    build(2);
    // (adaptive mutexes may spin rather than sleep; both paths must
    // preserve mutual exclusion)
    const int m = kernel->createMutex(0x9000);
    // Each thread: lock, compute 10000 in the critical section,
    // report, unlock.
    for (int i = 0; i < 2; ++i) {
        addThread({{OpKind::Lock, 0, 0x9000, m},
                   {OpKind::Compute, 10000, 0, 0},
                   {OpKind::TxnEnd, 0, 0, i},
                   {OpKind::Unlock, 0, 0x9000, m},
                   {OpKind::End, 0, 0, 0}});
    }
    kernel->start();
    eq.run();
    ASSERT_EQ(sink.completions.size(), 2u);
    const sim::Tick gap = sink.completions[1].when -
                          sink.completions[0].when;
    EXPECT_GE(gap, 10000u)
        << "critical sections must not overlap";
    EXPECT_GE(kernel->stats().contendedLocks +
                  kernel->stats().lockSpins,
              1u);
    EXPECT_EQ(kernel->stats().lockAcquires, 2u);
}

TEST_F(KernelTest, MutexGrantsInFifoOrder)
{
    // Disable adaptive spinning to exercise the sleeping FIFO path.
    OsConfig oscfg;
    oscfg.spinRetryNs = 0;
    build(4, oscfg);
    const int m = kernel->createMutex(0x9000);
    // Thread 0 grabs the lock and holds it long enough for 1..3 to
    // queue in a deterministic order (they start staggered).
    addThread({{OpKind::Lock, 0, 0x9000, m},
               {OpKind::Compute, 50000, 0, 0},
               {OpKind::Unlock, 0, 0x9000, m},
               {OpKind::End, 0, 0, 0}});
    for (int i = 1; i <= 3; ++i) {
        addThread({{OpKind::Compute,
                    static_cast<std::uint64_t>(1000 * i), 0, 0},
                   {OpKind::Lock, 0, 0x9000, m},
                   {OpKind::TxnEnd, 0, 0, i},
                   {OpKind::Unlock, 0, 0x9000, m},
                   {OpKind::End, 0, 0, 0}});
    }
    kernel->start();
    eq.run();
    ASSERT_EQ(sink.completions.size(), 3u);
    EXPECT_EQ(sink.completions[0].type, 1);
    EXPECT_EQ(sink.completions[1].type, 2);
    EXPECT_EQ(sink.completions[2].type, 3);
}

TEST_F(KernelTest, BarrierReleasesAllTogether)
{
    build(2);
    const int b = kernel->createBarrier(2);
    // One fast and one slow thread; both report after the barrier.
    addThread({{OpKind::Compute, 10, 0, 0},
               {OpKind::Barrier, 0, 0, b},
               {OpKind::TxnEnd, 0, 0, 0},
               {OpKind::End, 0, 0, 0}});
    addThread({{OpKind::Compute, 20000, 0, 0},
               {OpKind::Barrier, 0, 0, b},
               {OpKind::TxnEnd, 0, 0, 1},
               {OpKind::End, 0, 0, 0}});
    kernel->start();
    eq.run();
    ASSERT_EQ(sink.completions.size(), 2u);
    for (const auto &c : sink.completions)
        EXPECT_GE(c.when, 20000u);
    EXPECT_EQ(kernel->stats().barrierEpisodes, 1u);
}

TEST_F(KernelTest, BarrierReusableAcrossEpisodes)
{
    build(2);
    const int b = kernel->createBarrier(2);
    for (int i = 0; i < 2; ++i) {
        addThread({{OpKind::Barrier, 0, 0, b},
                   {OpKind::Compute, 100, 0, 0},
                   {OpKind::Barrier, 0, 0, b},
                   {OpKind::TxnEnd, 0, 0, i},
                   {OpKind::End, 0, 0, 0}});
    }
    kernel->start();
    eq.run();
    EXPECT_EQ(kernel->stats().barrierEpisodes, 2u);
    EXPECT_EQ(kernel->finishedThreads(), 2u);
}

TEST_F(KernelTest, SleepWakesAfterRequestedTime)
{
    build(1);
    addThread({{OpKind::Sleep, 50000, 0, 0},
               {OpKind::TxnEnd, 0, 0, 0},
               {OpKind::End, 0, 0, 0}});
    kernel->start();
    eq.run();
    ASSERT_EQ(sink.completions.size(), 1u);
    EXPECT_GE(sink.completions[0].when, 50000u);
}

TEST_F(KernelTest, SleepingCpuRunsOtherWork)
{
    build(1);
    addThread({{OpKind::Sleep, 100000, 0, 0},
               {OpKind::End, 0, 0, 0}});
    addThread({{OpKind::Compute, 500, 0, 0},
               {OpKind::TxnEnd, 0, 0, 1},
               {OpKind::End, 0, 0, 0}});
    kernel->start();
    eq.run();
    ASSERT_EQ(sink.completions.size(), 1u);
    EXPECT_LT(sink.completions[0].when, 100000u)
        << "the compute thread must run during the sleep";
}

TEST_F(KernelTest, YieldRotatesRunQueue)
{
    build(1);
    for (int i = 0; i < 2; ++i) {
        std::vector<Op> ops;
        for (int j = 0; j < 5; ++j) {
            ops.push_back({OpKind::Compute, 100, 0, 0});
            ops.push_back({OpKind::TxnEnd, 0, 0, i});
            ops.push_back({OpKind::Yield, 0, 0, 0});
        }
        ops.push_back({OpKind::End, 0, 0, 0});
        addThread(ops);
    }
    kernel->start();
    eq.run();
    ASSERT_EQ(sink.completions.size(), 10u);
    // Yields force strict alternation between the two threads.
    for (std::size_t i = 1; i < sink.completions.size(); ++i) {
        EXPECT_NE(sink.completions[i].type,
                  sink.completions[i - 1].type);
    }
}

TEST_F(KernelTest, IdleCpusStealWork)
{
    OsConfig oscfg;
    oscfg.workStealing = true;
    build(2, oscfg);
    // Three long threads: initial round-robin puts two on cpu0; when
    // cpu1's only thread finishes early it must steal.
    addThread({{OpKind::Compute, 100000, 0, 0},
               {OpKind::TxnEnd, 0, 0, 0},
               {OpKind::End, 0, 0, 0}});
    addThread({{OpKind::Compute, 10, 0, 0},
               {OpKind::End, 0, 0, 0}});
    addThread({{OpKind::Compute, 100000, 0, 0},
               {OpKind::TxnEnd, 0, 0, 2},
               {OpKind::End, 0, 0, 0}});
    kernel->start();
    eq.run();
    EXPECT_EQ(kernel->finishedThreads(), 3u);
    EXPECT_GE(kernel->stats().steals, 1u);
    // Stolen work overlaps: both long transactions complete well
    // before 200000 (serialized would be ~200000).
    for (const auto &c : sink.completions)
        EXPECT_LT(c.when, 150000u);
}

TEST_F(KernelTest, TraceRecordsSchedulingEvents)
{
    OsConfig oscfg;
    oscfg.spinRetryNs = 0; // force the Block/Wakeup path
    build(2, oscfg);
    kernel->enableTrace(1024);
    const int m = kernel->createMutex(0x9000);
    for (int i = 0; i < 3; ++i) {
        addThread({{OpKind::Lock, 0, 0x9000, m},
                   {OpKind::Compute, 5000, 0, 0},
                   {OpKind::Unlock, 0, 0x9000, m},
                   {OpKind::End, 0, 0, 0}});
    }
    kernel->start();
    eq.run();
    const auto &tr = kernel->traceEvents();
    EXPECT_FALSE(tr.empty());
    bool sawDispatch = false, sawBlock = false, sawWake = false;
    for (const auto &e : tr) {
        sawDispatch |= e.kind == SchedEvent::Kind::Dispatch;
        sawBlock |= e.kind == SchedEvent::Kind::Block;
        sawWake |= e.kind == SchedEvent::Kind::Wakeup;
    }
    EXPECT_TRUE(sawDispatch);
    EXPECT_TRUE(sawBlock);
    EXPECT_TRUE(sawWake);
    // Events are in nondecreasing time order.
    for (std::size_t i = 1; i < tr.size(); ++i)
        EXPECT_LE(tr[i - 1].when, tr[i].when);
}

TEST_F(KernelTest, DrainParksEveryCpuAndResumes)
{
    build(2);
    for (int i = 0; i < 4; ++i) {
        std::vector<Op> ops;
        for (int j = 0; j < 50; ++j) {
            ops.push_back({OpKind::Compute, 1000, 0, 0});
            ops.push_back({OpKind::TxnEnd, 0, 0, 0});
        }
        ops.push_back({OpKind::End, 0, 0, 0});
        addThread(ops);
    }
    kernel->start();
    eq.run(20000); // run a while
    kernel->beginDrain();
    eq.run();
    EXPECT_TRUE(kernel->fullyDrained());
    EXPECT_TRUE(eq.empty());
    const std::uint64_t txnsAtDrain = kernel->stats().transactions;
    kernel->endDrain();
    eq.run();
    EXPECT_EQ(kernel->finishedThreads(), 4u);
    EXPECT_GT(kernel->stats().transactions, txnsAtDrain);
}

TEST_F(KernelTest, AdaptiveMutexSpinsWhileOwnerRuns)
{
    build(2);
    const int m = kernel->createMutex(0x9000);
    // Owner (t0) keeps running while t1 contends: t1 must spin (no
    // sleep) and still acquire after the release.
    addThread({{OpKind::Lock, 0, 0x9000, m},
               {OpKind::Compute, 20000, 0, 0},
               {OpKind::Unlock, 0, 0x9000, m},
               {OpKind::End, 0, 0, 0}});
    addThread({{OpKind::Compute, 100, 0, 0},
               {OpKind::Lock, 0, 0x9000, m},
               {OpKind::TxnEnd, 0, 0, 1},
               {OpKind::Unlock, 0, 0x9000, m},
               {OpKind::End, 0, 0, 0}});
    kernel->start();
    eq.run();
    EXPECT_EQ(kernel->finishedThreads(), 2u);
    EXPECT_GT(kernel->stats().lockSpins, 10u);
    EXPECT_EQ(kernel->stats().contendedLocks, 0u);
    ASSERT_EQ(sink.completions.size(), 1u);
    EXPECT_GE(sink.completions[0].when, 20000u);
}

TEST_F(KernelTest, LockHolderIsNotPreempted)
{
    OsConfig oscfg;
    oscfg.quantum = 1000; // aggressive quantum
    build(1, oscfg);
    const int m = kernel->createMutex(0x9000);
    // The holder computes far beyond the quantum inside the critical
    // section; a competing thread is ready on the same CPU. The
    // holder must not be preempted mid-section (schedctl-style).
    addThread({{OpKind::Lock, 0, 0x9000, m},
               {OpKind::Compute, 20000, 0, 0},
               {OpKind::TxnEnd, 0, 0, 0},
               {OpKind::Unlock, 0, 0x9000, m},
               {OpKind::End, 0, 0, 0}});
    addThread({{OpKind::Compute, 500, 0, 0},
               {OpKind::TxnEnd, 0, 0, 1},
               {OpKind::End, 0, 0, 0}});
    kernel->start();
    eq.run();
    ASSERT_EQ(sink.completions.size(), 2u);
    // The holder's transaction completes before the other thread
    // ever runs on the single CPU.
    EXPECT_EQ(sink.completions[0].type, 0);
}

TEST_F(KernelTest, DrainCompletesWhileThreadsBlockOnLocks)
{
    // Regression: a thread that blocks on a mutex *during* the drain
    // window must still leave its CPU quiescent.
    OsConfig oscfg;
    oscfg.spinRetryNs = 0; // force the sleeping path
    build(2, oscfg);
    const int m = kernel->createMutex(0x9000);
    for (int i = 0; i < 4; ++i) {
        std::vector<Op> ops;
        for (int j = 0; j < 200; ++j) {
            ops.push_back({OpKind::Lock, 0, 0x9000, m});
            ops.push_back({OpKind::Compute, 400, 0, 0});
            ops.push_back({OpKind::Unlock, 0, 0x9000, m});
            ops.push_back({OpKind::TxnEnd, 0, 0, 0});
        }
        ops.push_back({OpKind::End, 0, 0, 0});
        addThread(ops);
    }
    kernel->start();
    eq.run(5000); // mid-flight
    kernel->beginDrain();
    eq.run();
    EXPECT_TRUE(kernel->fullyDrained());
    EXPECT_TRUE(eq.empty());
    kernel->endDrain();
    eq.run();
    EXPECT_EQ(kernel->finishedThreads(), 4u);
}

TEST_F(KernelTest, DispatchStatsAccumulate)
{
    build(1);
    addThread({{OpKind::Compute, 10, 0, 0},
               {OpKind::End, 0, 0, 0}});
    kernel->start();
    eq.run();
    EXPECT_GE(kernel->stats().dispatches, 1u);
}

} // namespace
} // namespace os
} // namespace varsim
