/**
 * @file
 * Tests of the directory-based MOSI fabric: point-to-point timing
 * (3-hop forwarding), directory state tracking, invalidation
 * semantics, NACK/retry, and the derived-state rebuild on restore.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"

namespace varsim
{
namespace mem
{
namespace
{

struct TestClient : public MemClient
{
    explicit TestClient(sim::EventQueue &q) : eq(&q) {}

    void
    memResponse(std::uint64_t tag) override
    {
        responses.emplace_back(tag, eq->curTick());
    }

    sim::Tick
    lastResponseTick() const
    {
        return responses.empty() ? sim::maxTick
                                 : responses.back().second;
    }

    sim::EventQueue *eq;
    std::vector<std::pair<std::uint64_t, sim::Tick>> responses;
};

MemConfig
dirConfig()
{
    MemConfig c;
    c.protocol = CoherenceProtocol::Directory;
    c.numNodes = 4;
    c.l1Size = 512;
    c.l1Assoc = 1;
    c.l2Size = 4096;
    c.l2Assoc = 2;
    c.perturbMaxNs = 0;
    return c;
}

class DirectoryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ms = std::make_unique<MemSystem>("mem", eq, dirConfig());
        for (std::size_t n = 0; n < 4; ++n) {
            clients.push_back(std::make_unique<TestClient>(eq));
            ms->icache(n).setClient(clients.back().get());
            ms->dcache(n).setClient(clients.back().get());
        }
    }

    sim::Tick
    accessAndWait(std::size_t node, sim::Addr addr, bool write)
    {
        const sim::Tick start = eq.curTick();
        if (ms->dcache(node).tryAccess(addr, write))
            return 0;
        ms->dcache(node).access({addr, write, false, nextTag++});
        eq.run();
        return clients[node]->lastResponseTick() - start;
    }

    sim::EventQueue eq;
    std::unique_ptr<MemSystem> ms;
    std::vector<std::unique_ptr<TestClient>> clients;
    std::uint64_t nextTag = 1;
};

TEST_F(DirectoryTest, ColdMissTiming)
{
    // request hop (50) + dir (12) + DRAM (80) + data hop (50)
    // + L2-to-core (12) = 204.
    EXPECT_EQ(accessAndWait(0, 0x10000, false), 204u);
    EXPECT_EQ(ms->totalStats().memoryFetches, 1u);
    EXPECT_EQ(ms->directory().sharersOf(0x10000), 0x1u);
    EXPECT_EQ(ms->directory().ownerOf(0x10000), -1);
}

TEST_F(DirectoryTest, StoreRecordsOwner)
{
    accessAndWait(0, 0x20000, true);
    EXPECT_EQ(ms->directory().ownerOf(0x20000), 0);
    EXPECT_EQ(ms->directory().sharersOf(0x20000), 0x1u);
    EXPECT_EQ(ms->l2(0).snoopState(0x20000), LineState::Modified);
}

TEST_F(DirectoryTest, ThreeHopForwarding)
{
    accessAndWait(0, 0x20000, true); // node0 owns M
    // node1 GetS: hop(50) + dir(12) + fwd hop(50) + owner(25) +
    // data hop(50) + 12 = 199.
    EXPECT_EQ(accessAndWait(1, 0x20000, false), 199u);
    EXPECT_EQ(ms->totalStats().cacheToCache, 1u);
    EXPECT_EQ(ms->l2(0).snoopState(0x20000), LineState::Owned);
    EXPECT_EQ(ms->l2(1).snoopState(0x20000), LineState::Shared);
    EXPECT_EQ(ms->directory().ownerOf(0x20000), 0);
    EXPECT_EQ(ms->directory().sharersOf(0x20000), 0x3u);
}

TEST_F(DirectoryTest, GetMInvalidatesTrackedSharers)
{
    accessAndWait(0, 0x30000, false);
    accessAndWait(1, 0x30000, false);
    accessAndWait(2, 0x30000, true);
    EXPECT_EQ(ms->l2(0).snoopState(0x30000), LineState::Invalid);
    EXPECT_EQ(ms->l2(1).snoopState(0x30000), LineState::Invalid);
    EXPECT_EQ(ms->l2(2).snoopState(0x30000), LineState::Modified);
    EXPECT_EQ(ms->directory().ownerOf(0x30000), 2);
    EXPECT_EQ(ms->directory().sharersOf(0x30000), 0x4u);
}

TEST_F(DirectoryTest, InvalidationAcksExtendLatency)
{
    accessAndWait(0, 0x30000, false);
    accessAndWait(1, 0x30000, false);
    // node2 GetM: data from memory ((80-12... dram scheduled at
    // process time) + 50) dominates the 100ns ack round trip:
    // 50 + 12 + max(130, 100) + 12 = 204.
    EXPECT_EQ(accessAndWait(2, 0x30000, true), 204u);
}

TEST_F(DirectoryTest, UpgradeFromOwned)
{
    accessAndWait(0, 0x20000, true);  // node0 M
    accessAndWait(1, 0x20000, false); // node0 O, node1 S
    // node0 GetM upgrade: 50 + 12 + max(upgrade 8, acks 100) + 12
    // = 174.
    EXPECT_EQ(accessAndWait(0, 0x20000, true), 174u);
    EXPECT_EQ(ms->l2(0).snoopState(0x20000), LineState::Modified);
    EXPECT_EQ(ms->l2(1).snoopState(0x20000), LineState::Invalid);
    EXPECT_GE(ms->totalStats().upgrades, 1u);
}

TEST_F(DirectoryTest, WritebackReturnsOwnershipToMemory)
{
    MemConfig cfg = dirConfig();
    cfg.l2Size = 512; // 8 blocks, 2-way
    cfg.l1Size = 128;
    sim::EventQueue eq2;
    MemSystem m2("mem", eq2, cfg);
    TestClient cl(eq2);
    m2.dcache(0).setClient(&cl);
    m2.icache(0).setClient(&cl);

    auto access = [&](sim::Addr a, bool w) {
        if (!m2.dcache(0).tryAccess(a, w)) {
            m2.dcache(0).access({a, w, false, ++nextTag});
            eq2.run();
        }
    };
    access(0x1000, true);        // dirty
    access(0x1000 + 256, false); // same set
    access(0x1000 + 512, false); // evicts dirty block
    EXPECT_GE(m2.totalStats().writebacks, 1u);
    EXPECT_EQ(m2.directory().ownerOf(0x1000), -1);
    // Refetch comes from memory.
    access(0x1000, false);
    EXPECT_EQ(m2.l2(0).snoopState(0x1000), LineState::Shared);
}

TEST_F(DirectoryTest, ConcurrentRequestsNackAndRetry)
{
    accessAndWait(0, 0x40000, true);
    ms->dcache(1).access({0x40000, false, false, 100});
    ms->dcache(2).access({0x40000, false, false, 200});
    eq.run();
    EXPECT_EQ(clients[1]->responses.size(), 1u);
    EXPECT_EQ(clients[2]->responses.size(), 1u);
    EXPECT_GE(ms->totalStats().nacks, 1u);
    EXPECT_EQ(ms->pendingTransactions(), 0u);
}

TEST_F(DirectoryTest, RestoreRebuildsDirectoryFromCaches)
{
    accessAndWait(0, 0x20000, true);
    accessAndWait(1, 0x20000, false); // 0: O, 1: S
    accessAndWait(2, 0x50000, true);  // 2: M

    sim::CheckpointOut out;
    ms->serialize(out);

    sim::EventQueue eq2;
    MemSystem ms2("mem", eq2, dirConfig());
    sim::CheckpointIn in(out.bytes());
    ms2.unserialize(in);

    EXPECT_EQ(ms2.directory().ownerOf(0x20000), 0);
    EXPECT_EQ(ms2.directory().sharersOf(0x20000) & 0x3u, 0x3u);
    EXPECT_EQ(ms2.directory().ownerOf(0x50000), 2);
}

TEST_F(DirectoryTest, PerturbationAppliesToDirectoryFills)
{
    MemConfig cfg = dirConfig();
    cfg.perturbMaxNs = 4;
    sim::EventQueue eq2;
    MemSystem m2("mem", eq2, cfg);
    m2.seedPerturbation(3);
    TestClient cl(eq2);
    m2.dcache(0).setClient(&cl);

    bool sawNonBase = false;
    for (int i = 0; i < 32; ++i) {
        const sim::Addr a = 0x100000 + i * 0x1000;
        const sim::Tick start = eq2.curTick();
        m2.dcache(0).access(
            {a, false, false, static_cast<std::uint64_t>(i)});
        eq2.run();
        const sim::Tick lat = cl.lastResponseTick() - start;
        EXPECT_GE(lat, 204u);
        EXPECT_LE(lat, 208u);
        sawNonBase |= lat != 204u;
    }
    EXPECT_TRUE(sawNonBase);
}

} // namespace
} // namespace mem
} // namespace varsim
