/** @file Tests of the next-line L2 prefetcher (ablation feature). */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"

namespace varsim
{
namespace mem
{
namespace
{

struct TestClient : public MemClient
{
    void memResponse(std::uint64_t) override { ++responses; }
    int responses = 0;
};

MemConfig
prefetchConfig()
{
    MemConfig c;
    c.numNodes = 2;
    c.l1Size = 1024;
    c.l2Size = 16384;
    c.perturbMaxNs = 0;
    c.l2NextLinePrefetch = true;
    return c;
}

class PrefetchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ms = std::make_unique<MemSystem>("mem", eq,
                                         prefetchConfig());
        for (std::size_t n = 0; n < 2; ++n) {
            ms->icache(n).setClient(&client);
            ms->dcache(n).setClient(&client);
        }
    }

    void
    accessAndWait(std::size_t node, sim::Addr addr, bool write)
    {
        if (ms->dcache(node).tryAccess(addr, write))
            return;
        ms->dcache(node).access({addr, write, false, ++tag});
        eq.run();
    }

    sim::EventQueue eq;
    std::unique_ptr<MemSystem> ms;
    TestClient client;
    std::uint64_t tag = 0;
};

TEST_F(PrefetchTest, DemandFillPrefetchesNextLine)
{
    accessAndWait(0, 0x10000, false);
    EXPECT_GE(ms->l2(0).prefetches(), 1u);
    // The next block is now resident without a demand access.
    EXPECT_EQ(ms->l2(0).snoopState(0x10040), LineState::Shared);
    EXPECT_GE(ms->totalStats().prefetches, 1u);
}

TEST_F(PrefetchTest, PrefetchFillDoesNotChain)
{
    accessAndWait(0, 0x10000, false);
    // Exactly one line ahead: the prefetch fill must not trigger a
    // further prefetch of 0x10080.
    EXPECT_EQ(ms->l2(0).snoopState(0x10080), LineState::Invalid);
    EXPECT_EQ(ms->l2(0).prefetches(), 1u);
}

TEST_F(PrefetchTest, NoPrefetchWhenLineResident)
{
    accessAndWait(0, 0x10040, false); // brings 0x10080 too
    const std::uint64_t before = ms->l2(0).prefetches();
    accessAndWait(0, 0x10000, false); // next line 0x10040 resident
    EXPECT_EQ(ms->l2(0).prefetches(), before)
        << "no prefetch when the next line is already cached";
}

TEST_F(PrefetchTest, SequentialScanHitsAfterWarmup)
{
    // A streaming read: after the first miss, each next block is
    // prefetched ahead, so demand misses roughly halve... at this
    // naive depth-1 design every other access still misses unless
    // the prefetch completes in time; what we check is that the
    // prefetcher strictly reduces demand misses vs. baseline.
    for (int i = 0; i < 64; ++i)
        accessAndWait(0, 0x20000 + i * 64u, false);
    const std::uint64_t withPf = ms->l2(0).misses();

    sim::EventQueue eq2;
    MemConfig base = prefetchConfig();
    base.l2NextLinePrefetch = false;
    MemSystem ms2("mem", eq2, base);
    TestClient c2;
    ms2.dcache(0).setClient(&c2);
    std::uint64_t t2 = 0;
    for (int i = 0; i < 64; ++i) {
        const sim::Addr a = 0x20000 + i * 64u;
        if (!ms2.dcache(0).tryAccess(a, false)) {
            ms2.dcache(0).access({a, false, false, ++t2});
            eq2.run();
        }
    }
    EXPECT_LT(withPf, ms2.l2(0).misses());
}

TEST_F(PrefetchTest, DemandJoiningPrefetchGetsServed)
{
    // Start a demand miss; its prefetch goes in flight; immediately
    // demand-access the prefetched block so the request joins the
    // in-flight prefetch TBE.
    ms->dcache(0).access({0x30000, false, false, ++tag});
    eq.run(eq.curTick() + 200); // demand fill done, prefetch launched
    ms->dcache(0).access({0x30040, false, false, ++tag});
    eq.run();
    EXPECT_EQ(client.responses, 2);
    EXPECT_EQ(ms->pendingTransactions(), 0u);
    EXPECT_TRUE(ms->dcache(0).tryAccess(0x30040, false));
}

TEST_F(PrefetchTest, DisabledByDefault)
{
    sim::EventQueue eq2;
    MemConfig base; // defaults
    EXPECT_FALSE(base.l2NextLinePrefetch);
}

} // namespace
} // namespace mem
} // namespace varsim
