/**
 * @file
 * Directed random stress tester for the MOSI snooping protocol, in
 * the spirit of gem5's Ruby Random Tester: thousands of randomized
 * loads and stores from every node against a small, conflict-heavy
 * address space, with the protocol's global invariants checked
 * against a golden reference model after every quiesce point.
 *
 * Invariants checked:
 *  I1  at most one node holds a block in an owner state (M/O);
 *  I2  if any node holds M, no other node holds any valid copy;
 *  I3  every issued access eventually receives exactly one response;
 *  I4  only nodes that have actually written a block may hold it in
 *      M (write permission is granted exclusively through GetM);
 *  I5  the memory system drains to zero pending transactions.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "mem/mem_system.hh"
#include "sim/random.hh"

namespace varsim
{
namespace mem
{
namespace
{

class Collector : public MemClient
{
  public:
    void
    memResponse(std::uint64_t tag) override
    {
        ++responses[tag];
    }

    std::map<std::uint64_t, int> responses;
};

struct RandomTester
{
    explicit RandomTester(std::uint64_t seed, std::size_t nodes = 4,
                          CoherenceProtocol protocol =
                              CoherenceProtocol::Snooping)
        : rng(seed)
    {
        MemConfig cfg;
        cfg.protocol = protocol;
        cfg.numNodes = nodes;
        cfg.l1Size = 512;  // tiny: constant evictions
        cfg.l1Assoc = 1;
        cfg.l2Size = 2048; // 32 blocks: heavy conflict pressure
        cfg.l2Assoc = 2;
        cfg.perturbMaxNs = 4;
        ms = std::make_unique<MemSystem>("mem", eq, cfg);
        ms->seedPerturbation(seed ^ 0x5a5a);
        // 24 hot blocks: 6 set positions x 4 aliases (the L2 way
        // span is 1024B), so set pressure forces dirty evictions.
        for (int i = 0; i < 24; ++i) {
            hotBlocks.push_back(0x10000 + (i % 6) * 64 +
                                (i / 6) * 1024);
        }
        for (std::size_t n = 0; n < nodes; ++n) {
            clients.push_back(std::make_unique<Collector>());
            ms->icache(n).setClient(clients.back().get());
            ms->dcache(n).setClient(clients.back().get());
        }
    }

    /** Issue one random access; track expectations. */
    void
    step()
    {
        const std::size_t node =
            rng.uniformInt(0, clients.size() - 1);
        const sim::Addr addr = hotBlocks[static_cast<std::size_t>(
            rng.uniformInt(0, hotBlocks.size() - 1))];
        const bool write = rng.bernoulli(0.45);
        if (ms->dcache(node).tryAccess(addr, write)) {
            if (write)
                writers[addr].insert(static_cast<int>(node));
            return; // hits complete synchronously
        }
        const std::uint64_t tag = nextTag++;
        expected[tag] = static_cast<int>(node);
        ms->dcache(node).access({addr, write, false, tag});
        if (write)
            writers[addr].insert(static_cast<int>(node));
        // Randomly interleave: sometimes let time pass, sometimes
        // pile up concurrent transactions.
        if (rng.bernoulli(0.5))
            eq.run(eq.curTick() + rng.uniformInt(1, 300));
    }

    /** Drain and check all invariants. */
    void
    checkInvariants()
    {
        eq.run(); // quiesce
        ASSERT_EQ(ms->pendingTransactions(), 0u) << "I5";

        // I3: every expected response arrived exactly once.
        for (const auto &[tag, node] : expected) {
            const auto &resp =
                clients[static_cast<std::size_t>(node)]->responses;
            auto it = resp.find(tag);
            ASSERT_NE(it, resp.end())
                << "I3: tag " << tag << " never answered";
            EXPECT_EQ(it->second, 1)
                << "I3: tag " << tag << " answered twice";
        }

        // I1/I2/I4 per block.
        for (std::size_t b = 0; b < hotBlocks.size(); ++b) {
            const sim::Addr addr = hotBlocks[b];
            int owners = 0, modified = -1, ownerNode = -1;
            int validCopies = 0;
            for (std::size_t n = 0; n < clients.size(); ++n) {
                const LineState s = ms->l2(n).snoopState(addr);
                if (isValidState(s))
                    ++validCopies;
                if (isOwnerState(s)) {
                    ++owners;
                    ownerNode = static_cast<int>(n);
                }
                if (s == LineState::Modified)
                    modified = static_cast<int>(n);
            }
            EXPECT_LE(owners, 1) << "I1: block " << b;
            if (modified >= 0) {
                EXPECT_EQ(validCopies, 1)
                    << "I2: M with sharers, block " << b;
            }
            // I4: M can only be held by a node that wrote.
            if (modified >= 0) {
                EXPECT_TRUE(writers[addr].count(modified) > 0)
                    << "I4: block " << b << " M at non-writer node";
            }
            (void)ownerNode;
        }
    }

    sim::EventQueue eq;
    sim::Random rng;
    std::unique_ptr<MemSystem> ms;
    std::vector<std::unique_ptr<Collector>> clients;
    std::map<std::uint64_t, int> expected;
    std::map<sim::Addr, std::set<int>> writers;
    std::vector<sim::Addr> hotBlocks;
    std::uint64_t nextTag = 1;
};

class CoherenceRandomTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, CoherenceProtocol>>
{};

INSTANTIATE_TEST_SUITE_P(
    SeedsAndProtocols, CoherenceRandomTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
        ::testing::Values(CoherenceProtocol::Snooping,
                          CoherenceProtocol::Directory)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::uint64_t, CoherenceProtocol>> &info) {
        return sim::format(
            "seed%llu_%s",
            static_cast<unsigned long long>(
                std::get<0>(info.param)),
            std::get<1>(info.param) ==
                    CoherenceProtocol::Snooping
                ? "snoop"
                : "dir");
    });

TEST_P(CoherenceRandomTest, InvariantsHoldUnderRandomTraffic)
{
    RandomTester t(std::get<0>(GetParam()), 4,
                   std::get<1>(GetParam()));
    for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < 50; ++i)
            t.step();
        t.checkInvariants();
        if (::testing::Test::HasFatalFailure())
            return;
    }
    // Protocol actually got exercised: races produce NACKs and
    // conflict pressure produces writebacks.
    const MemStats s = t.ms->totalStats();
    EXPECT_GT(s.nacks + s.upgrades, 0u);
    EXPECT_GT(s.writebacks, 0u);
    EXPECT_GT(s.cacheToCache, 0u);
}

TEST(CoherenceRandomTest16, ScalesToSixteenNodes)
{
    RandomTester t(99, 16);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 100; ++i)
            t.step();
        t.checkInvariants();
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

} // namespace
} // namespace mem
} // namespace varsim
