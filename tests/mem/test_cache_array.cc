/** @file Unit tests for the set-associative tag array. */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"

namespace varsim
{
namespace mem
{
namespace
{

TEST(CacheArray, GeometryComputed)
{
    CacheArray a(4 * 1024 * 1024, 4, 64);
    EXPECT_EQ(a.numSets(), 16384u);
    EXPECT_EQ(a.numWays(), 4u);
    EXPECT_EQ(a.blockSize(), 64u);
}

TEST(CacheArray, DirectMappedGeometry)
{
    CacheArray a(64 * 1024, 1, 64);
    EXPECT_EQ(a.numSets(), 1024u);
    EXPECT_EQ(a.numWays(), 1u);
}

TEST(CacheArray, BlockAlign)
{
    CacheArray a(1024, 2, 64);
    EXPECT_EQ(a.blockAlign(0), 0u);
    EXPECT_EQ(a.blockAlign(63), 0u);
    EXPECT_EQ(a.blockAlign(64), 64u);
    EXPECT_EQ(a.blockAlign(0x12345), 0x12340u);
}

TEST(CacheArray, MissThenAllocateThenHit)
{
    CacheArray a(1024, 2, 64);
    EXPECT_EQ(a.find(0x100), nullptr);
    CacheLine victim;
    auto [line, hadVictim] = a.allocate(0x100, victim);
    EXPECT_FALSE(hadVictim);
    line->state = LineState::Shared;
    EXPECT_EQ(a.find(0x100), line);
}

TEST(CacheArray, InvalidLinesAreNotFound)
{
    CacheArray a(1024, 2, 64);
    CacheLine victim;
    auto [line, _] = a.allocate(0x40, victim);
    EXPECT_EQ(a.find(0x40), nullptr) << "allocated but Invalid";
    line->state = LineState::Modified;
    EXPECT_NE(a.find(0x40), nullptr);
    a.invalidate(*line);
    EXPECT_EQ(a.find(0x40), nullptr);
}

TEST(CacheArray, LruEviction)
{
    // 2-way, 8 sets of 64B: addresses 64*8 apart collide.
    CacheArray a(1024, 2, 64);
    const sim::Addr s = 0;
    const sim::Addr stride = 64 * 8;
    CacheLine victim;

    auto fill = [&](sim::Addr addr) {
        auto [line, had] = a.allocate(addr, victim);
        line->state = LineState::Shared;
        return had;
    };

    EXPECT_FALSE(fill(s));
    EXPECT_FALSE(fill(s + stride));
    // Touch the first so the second is LRU.
    a.findAndTouch(s);
    EXPECT_TRUE(fill(s + 2 * stride));
    EXPECT_EQ(victim.blockAddr, s + stride);
    EXPECT_NE(a.find(s), nullptr);
    EXPECT_EQ(a.find(s + stride), nullptr);
}

TEST(CacheArray, VictimCarriesState)
{
    CacheArray a(128, 1, 64); // 2 sets, direct mapped
    CacheLine victim;
    auto [line, _] = a.allocate(0x000, victim);
    line->state = LineState::Modified;
    line->aux = 3;

    auto [line2, had] = a.allocate(0x100, victim); // same set
    EXPECT_TRUE(had);
    EXPECT_EQ(victim.blockAddr, 0x000u);
    EXPECT_EQ(victim.state, LineState::Modified);
    EXPECT_EQ(victim.aux, 3);
    EXPECT_EQ(line2->state, LineState::Invalid);
}

TEST(CacheArray, CountValid)
{
    CacheArray a(1024, 4, 64);
    EXPECT_EQ(a.countValid(), 0u);
    CacheLine victim;
    for (sim::Addr addr = 0; addr < 5 * 64; addr += 64) {
        auto [line, _] = a.allocate(addr, victim);
        line->state = LineState::Shared;
    }
    EXPECT_EQ(a.countValid(), 5u);
}

TEST(CacheArray, SerializeRoundTrip)
{
    CacheArray a(1024, 2, 64);
    CacheLine victim;
    for (sim::Addr addr = 0; addr < 8 * 64; addr += 64) {
        auto [line, _] = a.allocate(addr, victim);
        line->state = addr % 128 ? LineState::Owned
                                 : LineState::Modified;
        line->aux = static_cast<std::uint8_t>(addr / 64);
    }

    sim::CheckpointOut out;
    a.serialize(out);

    CacheArray b(1024, 2, 64);
    sim::CheckpointIn in(out.bytes());
    b.unserialize(in);

    for (sim::Addr addr = 0; addr < 8 * 64; addr += 64) {
        const CacheLine *la = a.find(addr);
        const CacheLine *lb = b.find(addr);
        ASSERT_NE(lb, nullptr);
        EXPECT_EQ(la->state, lb->state);
        EXPECT_EQ(la->aux, lb->aux);
    }
}

TEST(CacheArray, MismatchedGeometryRestoresCold)
{
    // Restoring into a different geometry (the paper's Experiment 1
    // design: warmed checkpoint, different associativity) starts the
    // cache cold rather than misinterpreting set indices.
    CacheArray a(1024, 2, 64);
    CacheLine victim;
    auto [line, _] = a.allocate(0x40, victim);
    line->state = LineState::Modified;
    sim::CheckpointOut out;
    a.serialize(out);

    CacheArray b(1024, 1, 64); // same capacity, direct mapped
    sim::CheckpointIn in(out.bytes());
    b.unserialize(in);
    EXPECT_EQ(b.countValid(), 0u);
    EXPECT_TRUE(in.exhausted()) << "archive fully consumed";
}

TEST(CacheArray, StateHelpers)
{
    EXPECT_TRUE(isOwnerState(LineState::Modified));
    EXPECT_TRUE(isOwnerState(LineState::Owned));
    EXPECT_FALSE(isOwnerState(LineState::Shared));
    EXPECT_FALSE(isOwnerState(LineState::Invalid));
    EXPECT_TRUE(isValidState(LineState::Shared));
    EXPECT_FALSE(isValidState(LineState::Invalid));
}

} // namespace
} // namespace mem
} // namespace varsim
