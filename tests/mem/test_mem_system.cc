/**
 * @file
 * Integration tests of the memory hierarchy: MOSI snooping protocol
 * transitions, the paper's latencies (Section 3.2.1: 180 ns memory
 * fetch, 125 ns cache-to-cache, plus the 12 ns L2-to-core service),
 * NACK/retry behaviour, writebacks, DRAM queuing, and the latency
 * perturbation of Section 3.3.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"

namespace varsim
{
namespace mem
{
namespace
{

struct TestClient : public MemClient
{
    explicit TestClient(sim::EventQueue &q) : eq(&q) {}

    void
    memResponse(std::uint64_t tag) override
    {
        responses.emplace_back(tag, eq->curTick());
    }

    sim::Tick
    lastResponseTick() const
    {
        return responses.empty() ? sim::maxTick
                                 : responses.back().second;
    }

    sim::EventQueue *eq;
    std::vector<std::pair<std::uint64_t, sim::Tick>> responses;
};

MemConfig
smallConfig()
{
    MemConfig c;
    c.numNodes = 4;
    c.l1Size = 512;       // 8 blocks, tiny so evictions are easy
    c.l1Assoc = 1;
    c.l2Size = 4096;      // 64 blocks
    c.l2Assoc = 2;
    c.perturbMaxNs = 0;   // deterministic timing for exact checks
    return c;
}

class MemSystemTest : public ::testing::Test
{
  protected:
    void
    build(const MemConfig &cfg)
    {
        ms = std::make_unique<MemSystem>("mem", eq, cfg);
        for (std::size_t n = 0; n < cfg.numNodes; ++n) {
            clients.push_back(std::make_unique<TestClient>(eq));
            ms->icache(n).setClient(clients.back().get());
            ms->dcache(n).setClient(clients.back().get());
        }
    }

    /** Issue an access and run to completion; returns latency. */
    sim::Tick
    accessAndWait(std::size_t node, sim::Addr addr, bool write)
    {
        const sim::Tick start = eq.curTick();
        if (ms->dcache(node).tryAccess(addr, write))
            return 0;
        ms->dcache(node).access({addr, write, false, nextTag++});
        eq.run();
        return clients[node]->lastResponseTick() - start;
    }

    sim::EventQueue eq;
    std::unique_ptr<MemSystem> ms;
    std::vector<std::unique_ptr<TestClient>> clients;
    std::uint64_t nextTag = 1;
};

TEST_F(MemSystemTest, ColdMissFetchesFromMemory)
{
    build(smallConfig());
    // order(0) + traversal(50) + dram(80) + traversal(50) +
    // l2-to-core(12) = 192.
    EXPECT_EQ(accessAndWait(0, 0x10000, false), 192u);
    const MemStats s = ms->totalStats();
    EXPECT_EQ(s.memoryFetches, 1u);
    EXPECT_EQ(s.cacheToCache, 0u);
    EXPECT_EQ(s.l1Misses, 1u);
}

TEST_F(MemSystemTest, SecondAccessHitsInL1)
{
    build(smallConfig());
    accessAndWait(0, 0x10000, false);
    EXPECT_TRUE(ms->dcache(0).tryAccess(0x10000, false));
    EXPECT_TRUE(ms->dcache(0).tryAccess(0x10020, false))
        << "same 64B block must hit";
}

TEST_F(MemSystemTest, L2HitAfterL1Eviction)
{
    build(smallConfig());
    const sim::Addr a = 0x10000;
    accessAndWait(0, a, false);
    // Evict `a` from the direct-mapped 512B L1 (conflict at +512)
    // while staying within a different L2 set region... 0x10200
    // conflicts in L1 (512B apart) but not in the 4KB 2-way L2.
    accessAndWait(0, a + 512, false);
    EXPECT_FALSE(ms->dcache(0).tryAccess(a, false));
    EXPECT_EQ(accessAndWait(0, a, false),
              smallConfig().l2HitLatency);
}

TEST_F(MemSystemTest, StoreObtainsExclusiveOwnership)
{
    build(smallConfig());
    accessAndWait(0, 0x20000, true);
    EXPECT_EQ(ms->l2(0).snoopState(0x20000), LineState::Modified);
    EXPECT_TRUE(ms->dcache(0).tryAccess(0x20000, true));
}

TEST_F(MemSystemTest, CacheToCacheTransfer)
{
    build(smallConfig());
    accessAndWait(0, 0x20000, true); // node0: Modified
    // node1 read: order(0)+traversal(50)+owner(25)+traversal(50)
    // +l2-to-core(12) = 137.
    EXPECT_EQ(accessAndWait(1, 0x20000, false), 137u);
    const MemStats s = ms->totalStats();
    EXPECT_EQ(s.cacheToCache, 1u);
    // Old owner downgraded M -> O; requester Shared.
    EXPECT_EQ(ms->l2(0).snoopState(0x20000), LineState::Owned);
    EXPECT_EQ(ms->l2(1).snoopState(0x20000), LineState::Shared);
}

TEST_F(MemSystemTest, RemoteGetMInvalidatesAllCopies)
{
    build(smallConfig());
    accessAndWait(0, 0x20000, false);
    accessAndWait(1, 0x20000, false);
    accessAndWait(2, 0x20000, true); // invalidates 0 and 1
    EXPECT_EQ(ms->l2(0).snoopState(0x20000), LineState::Invalid);
    EXPECT_EQ(ms->l2(1).snoopState(0x20000), LineState::Invalid);
    EXPECT_EQ(ms->l2(2).snoopState(0x20000), LineState::Modified);
    // L1 copies were back-invalidated too.
    EXPECT_FALSE(ms->dcache(0).tryAccess(0x20000, false));
    EXPECT_FALSE(ms->dcache(1).tryAccess(0x20000, false));
}

TEST_F(MemSystemTest, UpgradeFromOwnedIsLocal)
{
    build(smallConfig());
    accessAndWait(0, 0x20000, true);  // node0 M
    accessAndWait(1, 0x20000, false); // node0 O, node1 S
    // node0 writes again: L1 was downgraded, L2 is Owned -> GetM
    // with the data already local (upgrade), and node1 invalidates.
    const sim::Tick lat = accessAndWait(0, 0x20000, true);
    EXPECT_EQ(lat, 0u + 50 + smallConfig().upgradeLatency + 12);
    EXPECT_EQ(ms->l2(0).snoopState(0x20000), LineState::Modified);
    EXPECT_EQ(ms->l2(1).snoopState(0x20000), LineState::Invalid);
    EXPECT_GE(ms->totalStats().upgrades, 1u);
}

TEST_F(MemSystemTest, SharedCopiesSurviveRemoteGetS)
{
    build(smallConfig());
    accessAndWait(0, 0x30000, false);
    accessAndWait(1, 0x30000, false);
    EXPECT_EQ(ms->l2(0).snoopState(0x30000), LineState::Shared);
    EXPECT_EQ(ms->l2(1).snoopState(0x30000), LineState::Shared);
    // Both L1s still hit for reads.
    EXPECT_TRUE(ms->dcache(0).tryAccess(0x30000, false));
    EXPECT_TRUE(ms->dcache(1).tryAccess(0x30000, false));
}

TEST_F(MemSystemTest, ConcurrentRequestsSameBlockNackAndRetry)
{
    build(smallConfig());
    // Warm node0 with M so node1/node2 both need a transaction.
    accessAndWait(0, 0x40000, true);
    ms->dcache(1).access({0x40000, false, false, 100});
    ms->dcache(2).access({0x40000, false, false, 200});
    eq.run();
    EXPECT_EQ(clients[1]->responses.size(), 1u);
    EXPECT_EQ(clients[2]->responses.size(), 1u);
    EXPECT_GE(ms->totalStats().nacks, 1u);
    EXPECT_EQ(ms->pendingTransactions(), 0u);
}

TEST_F(MemSystemTest, DirtyEvictionWritesBack)
{
    MemConfig cfg = smallConfig();
    cfg.l2Size = 512; // 8 blocks, 2-way: 4 sets -> easy conflicts
    cfg.l1Size = 128; // 2 blocks
    build(cfg);

    const sim::Addr a = 0x1000;
    accessAndWait(0, a, true); // dirty
    // Two more blocks mapping to the same L2 set (stride = 4 sets *
    // 64B = 256B).
    accessAndWait(0, a + 256, false);
    accessAndWait(0, a + 512, false); // evicts dirty `a`
    EXPECT_GE(ms->totalStats().writebacks, 1u);
    EXPECT_EQ(ms->l2(0).snoopState(a), LineState::Invalid);
    // The data is recoverable from memory.
    EXPECT_GT(accessAndWait(0, a, false), 0u);
}

TEST_F(MemSystemTest, DramOccupancyQueuesSameHome)
{
    build(smallConfig());
    const MemConfig cfg = smallConfig();
    // Two blocks with the same home controller (stride
    // numNodes*blockBytes), requested simultaneously.
    const sim::Addr a = 0x50000;
    const sim::Addr b = a + cfg.numNodes * cfg.blockBytes;
    ms->dcache(0).access({a, false, false, 1});
    ms->dcache(1).access({b, false, false, 2});
    eq.run();
    // First: ordered 0, snoop 50, dram 50..130, arrive 180, +12.
    // Second: ordered 4, snoop 54, dram start max(54, 50+16)=66,
    // ready 146, arrive 196, +12.
    EXPECT_EQ(clients[0]->lastResponseTick(), 192u);
    EXPECT_EQ(clients[1]->lastResponseTick(), 208u);
}

TEST_F(MemSystemTest, DistinctHomesDoNotQueue)
{
    build(smallConfig());
    const MemConfig cfg = smallConfig();
    const sim::Addr a = 0x50000;
    const sim::Addr b = a + cfg.blockBytes; // next home
    ms->dcache(0).access({a, false, false, 1});
    ms->dcache(1).access({b, false, false, 2});
    eq.run();
    EXPECT_EQ(clients[0]->lastResponseTick(), 192u);
    // Only the bus-ordering occupancy (4) separates them.
    EXPECT_EQ(clients[1]->lastResponseTick(), 196u);
}

TEST_F(MemSystemTest, PerturbationBoundsAndVariation)
{
    MemConfig cfg = smallConfig();
    cfg.perturbMaxNs = 4;
    build(cfg);
    ms->seedPerturbation(7);

    std::vector<sim::Tick> lats;
    for (int i = 0; i < 32; ++i) {
        const sim::Addr addr = 0x100000 + i * 0x1000;
        lats.push_back(accessAndWait(0, addr, false));
    }
    bool sawNonBase = false;
    for (sim::Tick lat : lats) {
        EXPECT_GE(lat, 192u);
        EXPECT_LE(lat, 196u);
        sawNonBase |= lat != 192u;
    }
    EXPECT_TRUE(sawNonBase) << "perturbation never fired";
    EXPECT_GT(ms->totalStats().perturbationTotal, 0u);
}

TEST_F(MemSystemTest, PerturbationSeedsDeterministic)
{
    auto runOnce = [](std::uint64_t seed) {
        sim::EventQueue q;
        MemConfig cfg = smallConfig();
        cfg.perturbMaxNs = 4;
        MemSystem m("mem", q, cfg);
        TestClient cl(q);
        m.dcache(0).setClient(&cl);
        m.seedPerturbation(seed);
        std::vector<sim::Tick> lats;
        for (int i = 0; i < 16; ++i) {
            m.dcache(0).access({0x100000 + i * 0x1000ull, false,
                                false, static_cast<std::uint64_t>(i)});
            q.run();
            lats.push_back(cl.responses.back().second);
        }
        return lats;
    };
    EXPECT_EQ(runOnce(11), runOnce(11));
    EXPECT_NE(runOnce(11), runOnce(12));
}

TEST_F(MemSystemTest, SerializeRestoresCoherenceState)
{
    build(smallConfig());
    accessAndWait(0, 0x20000, true);
    accessAndWait(1, 0x20000, false); // 0: O, 1: S
    accessAndWait(2, 0x30000, true);  // 2: M

    sim::CheckpointOut out;
    ms->serialize(out);

    sim::EventQueue eq2;
    MemSystem ms2("mem", eq2, smallConfig());
    sim::CheckpointIn in(out.bytes());
    ms2.unserialize(in);

    EXPECT_EQ(ms2.l2(0).snoopState(0x20000), LineState::Owned);
    EXPECT_EQ(ms2.l2(1).snoopState(0x20000), LineState::Shared);
    EXPECT_EQ(ms2.l2(2).snoopState(0x30000), LineState::Modified);
    EXPECT_EQ(ms2.totalStats().l2Misses,
              ms->totalStats().l2Misses);
}

TEST_F(MemSystemTest, MshrMergesRequestsToSameBlock)
{
    build(smallConfig());
    ms->dcache(0).access({0x60000, false, false, 1});
    ms->dcache(0).access({0x60008, false, false, 2}); // same block
    EXPECT_EQ(ms->dcache(0).pendingMisses(), 1u);
    eq.run();
    EXPECT_EQ(clients[0]->responses.size(), 2u);
    EXPECT_EQ(ms->totalStats().l2Misses, 1u)
        << "merged accesses must issue one bus transaction";
}

TEST_F(MemSystemTest, ReadThenWriteEscalatesToUpgrade)
{
    build(smallConfig());
    // A read miss in flight joined by a write to the same block:
    // both complete and the final state is Modified.
    ms->dcache(0).access({0x70000, false, false, 1});
    ms->dcache(0).access({0x70000, true, false, 2});
    eq.run();
    EXPECT_EQ(clients[0]->responses.size(), 2u);
    EXPECT_EQ(ms->l2(0).snoopState(0x70000), LineState::Modified);
    EXPECT_TRUE(ms->dcache(0).tryAccess(0x70000, true));
}

TEST_F(MemSystemTest, IFetchUsesICache)
{
    build(smallConfig());
    ms->icache(0).access({0x80000, false, true, 1});
    eq.run();
    EXPECT_EQ(clients[0]->responses.size(), 1u);
    EXPECT_TRUE(ms->icache(0).tryAccess(0x80000, false));
    EXPECT_FALSE(ms->dcache(0).tryAccess(0x80000, false))
        << "dcache must not be polluted by ifetch";
    // Both L1s of one node share the L2.
    EXPECT_EQ(ms->l2(0).snoopState(0x80000), LineState::Shared);
}

} // namespace
} // namespace mem
} // namespace varsim
