/**
 * @file
 * Parameterized sweeps over cache geometries and node counts: the
 * timing identities and coherence behaviour of the memory system
 * must hold for every configuration the experiments touch, not just
 * the defaults.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"

namespace varsim
{
namespace mem
{
namespace
{

struct Geometry
{
    std::size_t nodes;
    std::size_t l1Size;
    std::size_t l1Assoc;
    std::size_t l2Size;
    std::size_t l2Assoc;
    std::size_t blockBytes;
};

std::string
geomName(const ::testing::TestParamInfo<Geometry> &info)
{
    const Geometry &g = info.param;
    return sim::format("n%zu_l1_%zux%zu_l2_%zux%zu_b%zu", g.nodes,
                       g.l1Size, g.l1Assoc, g.l2Size, g.l2Assoc,
                       g.blockBytes);
}

class GeometrySweep : public ::testing::TestWithParam<Geometry>
{
  protected:
    struct Client : MemClient
    {
        void
        memResponse(std::uint64_t tag) override
        {
            lastTag = tag;
            ++count;
        }
        std::uint64_t lastTag = 0;
        int count = 0;
    };

    void
    SetUp() override
    {
        const Geometry &g = GetParam();
        cfg.numNodes = g.nodes;
        cfg.l1Size = g.l1Size;
        cfg.l1Assoc = g.l1Assoc;
        cfg.l2Size = g.l2Size;
        cfg.l2Assoc = g.l2Assoc;
        cfg.blockBytes = g.blockBytes;
        cfg.perturbMaxNs = 0;
        ms = std::make_unique<MemSystem>("mem", eq, cfg);
        clients.resize(g.nodes);
        for (std::size_t n = 0; n < g.nodes; ++n) {
            ms->icache(n).setClient(&clients[n]);
            ms->dcache(n).setClient(&clients[n]);
        }
    }

    sim::Tick
    accessAndWait(std::size_t node, sim::Addr addr, bool write)
    {
        const sim::Tick start = eq.curTick();
        if (ms->dcache(node).tryAccess(addr, write))
            return 0;
        ms->dcache(node).access({addr, write, false, ++tag});
        eq.run();
        return eq.curTick() - start;
    }

    sim::EventQueue eq;
    MemConfig cfg;
    std::unique_ptr<MemSystem> ms;
    std::vector<Client> clients;
    std::uint64_t tag = 0;
};

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(
        Geometry{2, 512, 1, 4096, 1, 64},     // direct-mapped both
        Geometry{2, 1024, 2, 8192, 2, 64},    // 2-way
        Geometry{4, 2048, 4, 16384, 4, 64},   // 4-way
        Geometry{4, 4096, 4, 32768, 8, 64},   // 8-way L2
        Geometry{2, 1024, 2, 8192, 2, 32},    // 32B blocks
        Geometry{2, 2048, 2, 16384, 2, 128},  // 128B blocks
        Geometry{16, 8192, 4, 65536, 4, 64},  // paper node count
        Geometry{1, 1024, 2, 8192, 2, 64}),   // uniprocessor
    geomName);

TEST_P(GeometrySweep, ColdMissLatencyIsGeometryIndependent)
{
    // 50 (order+traversal) + 80 (DRAM) + 50 (traversal) + 12
    // (L2-to-core) regardless of geometry.
    EXPECT_EQ(accessAndWait(0, 0x40000, false), 192u);
}

TEST_P(GeometrySweep, HitAfterFill)
{
    accessAndWait(0, 0x40000, false);
    EXPECT_TRUE(ms->dcache(0).tryAccess(0x40000, false));
    // Same block, different offset.
    EXPECT_TRUE(ms->dcache(0).tryAccess(
        0x40000 + cfg.blockBytes - 1, false));
    // Next block misses.
    EXPECT_FALSE(
        ms->dcache(0).tryAccess(0x40000 + cfg.blockBytes, false));
}

TEST_P(GeometrySweep, CacheToCacheAcrossNodes)
{
    if (GetParam().nodes < 2)
        GTEST_SKIP() << "needs two nodes";
    accessAndWait(0, 0x50000, true);
    EXPECT_EQ(accessAndWait(1, 0x50000, false), 137u);
    EXPECT_EQ(ms->l2(0).snoopState(0x50000), LineState::Owned);
}

TEST_P(GeometrySweep, EvictionsKeepSystemConsistent)
{
    // Touch 4x the L2 capacity in blocks; everything must drain and
    // re-reads must still work.
    const std::size_t blocks =
        4 * cfg.l2Size / cfg.blockBytes;
    for (std::size_t i = 0; i < blocks; ++i) {
        const sim::Addr a =
            0x100000 + static_cast<sim::Addr>(i) * cfg.blockBytes;
        if (!ms->dcache(0).tryAccess(a, i % 3 == 0)) {
            ms->dcache(0).access(
                {a, i % 3 == 0, false, ++tag});
        }
        if (i % 16 == 0)
            eq.run();
    }
    eq.run();
    EXPECT_EQ(ms->pendingTransactions(), 0u);
    EXPECT_GT(accessAndWait(0, 0x100000, false), 0u)
        << "evicted block must be re-fetchable";
}

TEST_P(GeometrySweep, SerializationRoundTripsEveryGeometry)
{
    accessAndWait(0, 0x60000, true);
    if (GetParam().nodes >= 2)
        accessAndWait(1, 0x60000, false);
    sim::CheckpointOut out;
    ms->serialize(out);

    sim::EventQueue eq2;
    MemSystem ms2("mem", eq2, cfg);
    sim::CheckpointIn in(out.bytes());
    ms2.unserialize(in);
    EXPECT_TRUE(in.exhausted());
    EXPECT_EQ(ms2.l2(0).snoopState(0x60000),
              ms->l2(0).snoopState(0x60000));
}

} // namespace
} // namespace mem
} // namespace varsim
